/**
 * @file
 * Streaming and batch descriptive statistics.
 */

#ifndef DIDT_STATS_RUNNING_STATS_HH
#define DIDT_STATS_RUNNING_STATS_HH

#include <cstddef>
#include <span>

namespace didt
{

/**
 * Numerically stable streaming mean/variance accumulator
 * (Welford's algorithm), plus min/max tracking.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void push(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void clear();

    /** Number of samples pushed. */
    std::size_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (divide by n); 0 when n < 1. */
    double variance() const;

    /** Sample variance (divide by n-1); 0 when n < 2. */
    double sampleVariance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Batch mean of a span; 0 when empty. */
double mean(std::span<const double> xs);

/** Batch population variance of a span; 0 when size < 1. */
double variance(std::span<const double> xs);

/** Population covariance of two equal-length spans. */
double covariance(std::span<const double> xs, std::span<const double> ys);

/**
 * Pearson correlation coefficient of two equal-length spans.
 * Returns 0 when either span has (near-)zero variance.
 */
double pearson(std::span<const double> xs, std::span<const double> ys);

/**
 * Lag-1 autocorrelation of a series: correlation between x[i] and
 * x[i+1]. Used to detect pulse patterns in wavelet detail coefficients.
 */
double lag1Autocorrelation(std::span<const double> xs);

/** Autocorrelation of a series at an arbitrary @p lag (0 when the
 *  series is shorter than lag + 2 samples). */
double lagAutocorrelation(std::span<const double> xs, std::size_t lag);

/** Root-mean-square difference of two equal-length spans. */
double rmsError(std::span<const double> a, std::span<const double> b);

} // namespace didt

#endif // DIDT_STATS_RUNNING_STATS_HH
