/**
 * @file
 * Gaussian (normal) distribution functions.
 *
 * The offline estimator (paper Section 4.1 step 5) models per-window
 * voltage as N(mean, variance) and queries tail probabilities like
 * P(V < 0.97 V).
 */

#ifndef DIDT_STATS_GAUSSIAN_HH
#define DIDT_STATS_GAUSSIAN_HH

namespace didt
{

/** A normal distribution parameterized by mean and standard deviation. */
class Gaussian
{
  public:
    /** @param mean distribution mean
     *  @param stddev standard deviation (>= 0; 0 gives a point mass) */
    Gaussian(double mean, double stddev);

    /** Probability density at @p x. */
    double pdf(double x) const;

    /** Cumulative distribution P(X <= x). */
    double cdf(double x) const;

    /** Tail probability P(X > x). */
    double tail(double x) const { return 1.0 - cdf(x); }

    /** Quantile function (inverse CDF) for p in (0, 1). */
    double quantile(double p) const;

    /** Distribution mean. */
    double mean() const { return mean_; }

    /** Distribution standard deviation. */
    double stddev() const { return stddev_; }

  private:
    double mean_;
    double stddev_;
};

/** Standard normal CDF Phi(z). */
double stdNormalCdf(double z);

/** Standard normal quantile Phi^-1(p), p in (0, 1). */
double stdNormalQuantile(double p);

} // namespace didt

#endif // DIDT_STATS_GAUSSIAN_HH
