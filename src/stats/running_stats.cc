#include "stats/running_stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace didt
{

void
RunningStats::push(double x)
{
    ++n_;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::clear()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (n_ < 1)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::sampleVariance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(std::span<const double> xs)
{
    RunningStats s;
    for (double x : xs)
        s.push(x);
    return s.mean();
}

double
variance(std::span<const double> xs)
{
    RunningStats s;
    for (double x : xs)
        s.push(x);
    return s.variance();
}

double
covariance(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        didt_panic("covariance: size mismatch ", xs.size(), " vs ",
                   ys.size());
    if (xs.empty())
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        acc += (xs[i] - mx) * (ys[i] - my);
    return acc / static_cast<double>(xs.size());
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    const double cov = covariance(xs, ys);
    const double vx = variance(xs);
    const double vy = variance(ys);
    const double denom = std::sqrt(vx * vy);
    if (denom < 1e-300)
        return 0.0;
    return cov / denom;
}

double
lag1Autocorrelation(std::span<const double> xs)
{
    return lagAutocorrelation(xs, 1);
}

double
lagAutocorrelation(std::span<const double> xs, std::size_t lag)
{
    if (lag == 0 || xs.size() < lag + 2)
        return 0.0;
    return pearson(xs.subspan(0, xs.size() - lag), xs.subspan(lag));
}

double
rmsError(std::span<const double> a, std::span<const double> b)
{
    if (a.size() != b.size())
        didt_panic("rmsError: size mismatch ", a.size(), " vs ", b.size());
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

} // namespace didt
