#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/simd.hh"

namespace didt
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi)
{
    if (bins == 0)
        didt_panic("Histogram needs at least one bin");
    if (!(hi > lo))
        didt_panic("Histogram range is empty: [", lo, ", ", hi, ")");
    counts_.assign(bins, 0);
    width_ = (hi - lo) / static_cast<double>(bins);
}

void
Histogram::push(double x)
{
    const auto raw = static_cast<long long>(std::floor((x - lo_) / width_));
    const long long last = static_cast<long long>(counts_.size()) - 1;
    if (raw < 0)
        ++underflow_;
    else if (raw > last)
        ++overflow_;
    const auto idx = std::clamp<long long>(raw, 0, last);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

void
Histogram::pushBlock(std::span<const double> xs)
{
    // Vectorized floor((x - lo) / width) into a small stack buffer;
    // clamping and the count increments stay scalar so the final
    // integer conversion is shared with push(). NaNs convert to
    // LLONG_MIN exactly as in push(), clamping into bin 0.
    constexpr std::size_t kBlock = 128;
    double idx[kBlock];
    const long long last = static_cast<long long>(counts_.size()) - 1;
    for (std::size_t off = 0; off < xs.size(); off += kBlock) {
        const std::size_t len = std::min(kBlock, xs.size() - off);
        simd::kernels().binIndices(xs.data() + off, len, lo_, width_, idx);
        for (std::size_t i = 0; i < len; ++i) {
            const auto raw = static_cast<long long>(idx[i]);
            if (raw < 0)
                ++underflow_;
            else if (raw > last)
                ++overflow_;
            const auto bin = std::clamp<long long>(raw, 0, last);
            ++counts_[static_cast<std::size_t>(bin)];
        }
    }
    total_ += xs.size();
}

std::uint64_t
Histogram::count(std::size_t i) const
{
    if (i >= counts_.size())
        didt_panic("Histogram bin ", i, " out of range (", counts_.size(),
                   " bins)");
    return counts_[i];
}

double
Histogram::fraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(i)) / static_cast<double>(total_);
}

double
Histogram::binCenter(std::size_t i) const
{
    if (i >= counts_.size())
        didt_panic("Histogram bin ", i, " out of range");
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::fractionBelow(double threshold) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double upper = lo_ + static_cast<double>(i + 1) * width_;
        if (upper <= threshold) {
            below += counts_[i];
        } else {
            // Partial bin: assume uniform density inside the bin.
            const double lower = lo_ + static_cast<double>(i) * width_;
            if (threshold > lower) {
                const double frac = (threshold - lower) / width_;
                below += static_cast<std::uint64_t>(
                    frac * static_cast<double>(counts_[i]));
            }
            break;
        }
    }
    return static_cast<double>(below) / static_cast<double>(total_);
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    underflow_ = 0;
    overflow_ = 0;
}

} // namespace didt
