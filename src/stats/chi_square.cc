#include "stats/chi_square.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/gaussian.hh"
#include "stats/running_stats.hh"
#include "util/logging.hh"

namespace didt
{

namespace
{

/** Lower incomplete gamma by series expansion (valid for x < a + 1). */
double
gammaPSeries(double a, double x)
{
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * 1e-15)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Upper incomplete gamma by continued fraction (valid for x >= a + 1). */
double
gammaQContinuedFraction(double a, double x)
{
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 500; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < 1e-15)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // namespace

double
regularizedGammaP(double a, double x)
{
    if (a <= 0.0)
        didt_panic("regularizedGammaP requires a > 0, got ", a);
    if (x < 0.0)
        didt_panic("regularizedGammaP requires x >= 0, got ", x);
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
chiSquareCdf(double x, std::size_t dof)
{
    if (dof == 0)
        didt_panic("chiSquareCdf requires dof >= 1");
    if (x <= 0.0)
        return 0.0;
    return regularizedGammaP(static_cast<double>(dof) / 2.0, x / 2.0);
}

double
chiSquareCriticalValue(std::size_t dof, double alpha)
{
    if (!(alpha > 0.0 && alpha < 1.0))
        didt_panic("alpha must be in (0,1), got ", alpha);
    const double target = 1.0 - alpha;
    double lo = 0.0;
    double hi = static_cast<double>(dof);
    while (chiSquareCdf(hi, dof) < target)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (chiSquareCdf(mid, dof) < target)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-10 * (1.0 + hi))
            break;
    }
    return 0.5 * (lo + hi);
}

NormalityResult
chiSquareNormalityTest(std::span<const double> xs, double alpha)
{
    NormalityResult result{};
    result.accepted = false;
    result.degenerate = false;

    RunningStats stats;
    for (double x : xs)
        stats.push(x);
    // The fitted moments are part of the result so callers that also
    // need them (e.g. classifyWindows) don't make a second pass.
    result.mean = stats.mean();
    result.variance = stats.variance();

    if (xs.size() < 16) {
        // Too few samples for a meaningful bin layout.
        result.degenerate = true;
        return result;
    }

    const double sd = std::sqrt(stats.sampleVariance());
    // Near-constant windows cannot be normal in any useful sense;
    // the paper treats these low-variance windows as non-Gaussian.
    if (sd < 1e-9 * (1.0 + std::fabs(stats.mean()))) {
        result.degenerate = true;
        return result;
    }

    // Equal-probability bins under the fitted normal. Expected counts of
    // n/k per bin; choose k so expected counts stay >= 5.
    const std::size_t n = xs.size();
    std::size_t k = std::max<std::size_t>(6, n / 8);
    k = std::min<std::size_t>(k, n / 5);
    if (k < 4) {
        result.degenerate = true;
        return result;
    }

    Gaussian fitted(stats.mean(), sd);
    std::vector<double> edges(k - 1);
    for (std::size_t i = 1; i < k; ++i)
        edges[i - 1] =
            fitted.quantile(static_cast<double>(i) / static_cast<double>(k));

    std::vector<std::size_t> observed(k, 0);
    for (double x : xs) {
        const auto it = std::upper_bound(edges.begin(), edges.end(), x);
        ++observed[static_cast<std::size_t>(it - edges.begin())];
    }

    const double expected =
        static_cast<double>(n) / static_cast<double>(k);
    double stat = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        const double d = static_cast<double>(observed[i]) - expected;
        stat += d * d / expected;
    }

    // Two parameters (mean, variance) were fitted from the sample.
    const std::size_t dof = k - 3;
    result.statistic = stat;
    result.dof = dof;
    result.criticalValue = chiSquareCriticalValue(dof, alpha);
    result.accepted = stat < result.criticalValue;
    return result;
}

} // namespace didt
