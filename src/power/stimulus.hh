/**
 * @file
 * Synthetic current stimuli for supply-network characterization.
 *
 * Commercial designers benchmark supply adequacy with custom crafted
 * microbenchmarks (paper Section 3.1); these generators produce the
 * equivalent synthetic current waveforms, including the worst-case
 * resonant square wave used to define 100% target impedance.
 */

#ifndef DIDT_POWER_STIMULUS_HH
#define DIDT_POWER_STIMULUS_HH

#include <cstddef>

#include "util/rng.hh"
#include "util/types.hh"

namespace didt
{

/**
 * Worst-case dI/dt stimulus: a square wave between @p low and @p high
 * amperes whose period matches the supply resonance, sustained long
 * enough to reach the steady-state resonant peak.
 *
 * @param clock_hz processor clock
 * @param resonant_hz supply resonant frequency
 * @param low idle current
 * @param high peak current
 * @param periods number of resonant periods to generate
 */
CurrentTrace resonantSquareWave(Hertz clock_hz, Hertz resonant_hz, Amp low,
                                Amp high, std::size_t periods = 64);

/** Constant current of @p cycles cycles. */
CurrentTrace constantCurrent(Amp level, std::size_t cycles);

/** A single step from @p before to @p after at cycle @p at. */
CurrentTrace stepCurrent(Amp before, Amp after, std::size_t cycles,
                         std::size_t at);

/**
 * Gaussian white-noise current clipped to be non-negative; models
 * the in-window behaviour the offline estimator assumes.
 */
CurrentTrace gaussianCurrent(Amp mean, Amp stddev, std::size_t cycles,
                             Rng &rng);

/**
 * Sinusoidal current at @p freq_hz, used to probe the frequency
 * response empirically.
 */
CurrentTrace sineCurrent(Amp mean, Amp amplitude, Hertz freq_hz,
                         Hertz clock_hz, std::size_t cycles);

} // namespace didt

#endif // DIDT_POWER_STIMULUS_HH
