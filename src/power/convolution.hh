/**
 * @file
 * Linear convolution utilities (paper Equation 6).
 *
 * Besides the batch form used by offline analysis, a streaming
 * convolver models the "full convolution" voltage monitor of
 * Grochowski et al. that the wavelet monitor is compared against:
 * it keeps a ring buffer of recent current samples and evaluates the
 * truncated convolution sum each cycle.
 */

#ifndef DIDT_POWER_CONVOLUTION_HH
#define DIDT_POWER_CONVOLUTION_HH

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hh"

namespace didt
{

/**
 * Batch linear convolution truncated to the input length:
 * out[n] = sum_{m=0}^{min(n, len(kernel)-1)} kernel[m] x[n-m].
 */
std::vector<double> convolve(std::span<const double> x,
                             std::span<const double> kernel);

/**
 * Batch convolution into caller-owned storage: @p out is resized to
 * x.size(), reusing its capacity so a batch of same-length windows is
 * convolved without reallocating. @p out must not alias @p x.
 */
void convolveInto(std::span<const double> x, std::span<const double> kernel,
                  std::vector<double> &out);

/**
 * Streaming truncated convolution over a sliding window of input
 * history. push() one sample per cycle; value() returns the current
 * convolution sum. History before the first push is assumed equal to
 * the first sample (steady-state warm start).
 */
class StreamingConvolver
{
  public:
    /** @param kernel convolution kernel (copied); front tap applies to
     *  the newest sample. */
    explicit StreamingConvolver(std::span<const double> kernel);

    /** Advance one cycle with input sample @p x. */
    void push(double x);

    /** Current convolution output (0 before any push). */
    double value() const { return value_; }

    /** Number of kernel taps. */
    std::size_t taps() const { return kernel_.size(); }

    /** Reset to the pre-first-push state. */
    void reset();

  private:
    std::vector<double> kernel_;
    std::vector<double> history_; // ring buffer, newest at head_
    std::size_t head_ = 0;
    bool primed_ = false;
    double value_ = 0.0;
};

/**
 * Truncate a kernel to the shortest prefix that retains at least
 * @p energy_fraction of its total squared magnitude. Used to bound the
 * cost of long impulse responses without losing the resonant body.
 */
std::vector<double> truncateKernel(std::span<const double> kernel,
                                   double energy_fraction = 0.99999);

} // namespace didt

#endif // DIDT_POWER_CONVOLUTION_HH
