/**
 * @file
 * Current/voltage trace persistence.
 *
 * The analyses only consume per-cycle waveforms, so traces produced by
 * any power simulator (the bundled processor model, Wattch, or a
 * measurement rig) can be interchanged through these functions. Two
 * formats: a one-value-per-line text format with '#' comments, and a
 * compact binary format with a magic header.
 */

#ifndef DIDT_POWER_TRACE_IO_HH
#define DIDT_POWER_TRACE_IO_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace didt
{

/**
 * A chip-level waveform bundle: one trace per core plus the aggregate
 * chip stimulus (the scaled per-core sum a Chip produced). Cores are
 * stored in core-id order; a uniprocessor trace set has one per-core
 * trace identical to the aggregate.
 */
struct TraceSet
{
    std::vector<CurrentTrace> perCore; ///< unscaled per-core currents
    CurrentTrace aggregate;            ///< chip-level stimulus
};

/**
 * Write a trace as text: optional '#' header lines, then one sample
 * per line. Fatal on I/O errors.
 */
void writeTraceText(const std::string &path, const CurrentTrace &trace,
                    const std::string &comment = "");

/**
 * Read a text trace written by writeTraceText (or any whitespace/
 * newline-separated list of numbers; '#' starts a comment line).
 * Fatal on missing files or malformed samples.
 */
CurrentTrace readTraceText(const std::string &path);

/** Write a trace in the compact binary format. Fatal on I/O errors. */
void writeTraceBinary(const std::string &path, const CurrentTrace &trace);

/** Read a binary trace; fatal on bad magic or truncation. */
CurrentTrace readTraceBinary(const std::string &path);

/**
 * Non-fatal variant of readTraceText: returns std::nullopt when the
 * file is missing, unreadable, or contains a malformed sample. Used by
 * cache layers where a read miss is an expected outcome, not an error.
 */
std::optional<CurrentTrace> tryReadTraceText(const std::string &path);

/**
 * Non-fatal variant of readTraceBinary: returns std::nullopt on a
 * missing file, bad magic, or truncation (e.g. a cache entry cut short
 * by a crashed writer) instead of exiting.
 */
std::optional<CurrentTrace> tryReadTraceBinary(const std::string &path);

/** Stream variants for testing and piping. */
void writeTraceText(std::ostream &os, const CurrentTrace &trace,
                    const std::string &comment = "");

/** Read a text trace from a stream (see readTraceText). */
CurrentTrace readTraceText(std::istream &is);

/**
 * Non-fatal text parse from a stream; nullopt on a malformed sample.
 * Entry point for the structured fuzz drivers (tests/fuzz/).
 */
std::optional<CurrentTrace> tryReadTraceText(std::istream &is);

/**
 * Non-fatal binary parse from a stream; nullopt on bad magic or any
 * truncation, including a header sample count larger than the data
 * actually present (the reader grows its buffer only as bytes arrive,
 * so a corrupt count can never force a huge allocation).
 */
std::optional<CurrentTrace> tryReadTraceBinary(std::istream &is);

/**
 * Write a per-core + aggregate trace set in the binary multi-trace
 * format (magic DIDTTRS1). Fatal on I/O errors.
 */
void writeTraceSetBinary(const std::string &path, const TraceSet &set);

/** Read a binary trace set; fatal on bad magic or truncation. */
TraceSet readTraceSetBinary(const std::string &path);

/**
 * Non-fatal variant of readTraceSetBinary: nullopt on a missing file,
 * bad magic, or any truncation. Sample counts are read with the same
 * bounded-allocation discipline as tryReadTraceBinary.
 */
std::optional<TraceSet> tryReadTraceSetBinary(const std::string &path);

/** Stream variant of the trace-set writer. */
void writeTraceSetBinary(std::ostream &os, const TraceSet &set);

/** Non-fatal trace-set parse from a stream (see tryReadTraceSetBinary). */
std::optional<TraceSet> tryReadTraceSetBinary(std::istream &is);

} // namespace didt

#endif // DIDT_POWER_TRACE_IO_HH
