#include "power/multistage.hh"

#include <algorithm>
#include <complex>

#include "util/logging.hh"

namespace didt
{

MultiStageSupplyNetwork::MultiStageSupplyNetwork(
    std::vector<SupplyNetworkConfig> stage_configs)
{
    if (stage_configs.empty())
        didt_fatal("MultiStageSupplyNetwork needs at least one stage");
    nominal_ = stage_configs.front().nominalVoltage;
    const Hertz clock = stage_configs.front().clockHz;
    std::size_t longest = 0;
    for (const SupplyNetworkConfig &cfg : stage_configs) {
        if (cfg.clockHz != clock)
            didt_fatal("all supply stages must share the clock");
        if (cfg.nominalVoltage != nominal_)
            didt_fatal("all supply stages must share the nominal voltage");
        stages_.emplace_back(cfg);
        longest =
            std::max(longest, stages_.back().impulseResponse().size());
    }

    response_.assign(longest, 0.0);
    for (const SupplyNetwork &stage : stages_) {
        const auto &z = stage.impulseResponse();
        for (std::size_t n = 0; n < z.size(); ++n)
            response_[n] += z[n];
    }
}

double
MultiStageSupplyNetwork::impedanceAt(Hertz f) const
{
    // Stages are in series along the delivery path: complex impedances
    // add before taking the magnitude.
    std::complex<double> total(0.0, 0.0);
    for (const SupplyNetwork &stage : stages_) {
        const double r = stage.resistance();
        const double l = stage.inductance();
        const double c = stage.capacitance();
        const std::complex<double> s(0.0, 2.0 * M_PI * f);
        total += (r + s * l) / (1.0 + s * r * c + s * s * l * c);
    }
    return std::abs(total);
}

double
MultiStageSupplyNetwork::resistance() const
{
    double r = 0.0;
    for (const SupplyNetwork &stage : stages_)
        r += stage.resistance();
    return r;
}

VoltageTrace
MultiStageSupplyNetwork::computeVoltage(const CurrentTrace &current) const
{
    VoltageTrace voltage(current.size(), nominal_);
    if (current.empty())
        return voltage;

    // Droops superpose: run every stage's recursion and subtract the
    // sum. (Equivalent to convolving with the combined response.)
    std::vector<SupplyStream> streams;
    streams.reserve(stages_.size());
    for (const SupplyNetwork &stage : stages_)
        streams.emplace_back(stage);

    for (std::size_t n = 0; n < current.size(); ++n) {
        double droop = 0.0;
        for (SupplyStream &stream : streams)
            droop += nominal_ - stream.push(current[n]);
        voltage[n] = nominal_ - droop;
    }
    return voltage;
}

Volt
MultiStageSupplyNetwork::steadyStateVoltage(Amp current) const
{
    return nominal_ - resistance() * current;
}

std::vector<SupplyNetworkConfig>
calibrateMultiStage(std::vector<SupplyNetworkConfig> stages,
                    const CurrentTrace &worst_case)
{
    if (stages.empty())
        didt_fatal("calibrateMultiStage needs at least one stage");
    if (worst_case.empty())
        didt_fatal("calibrateMultiStage needs a non-empty stimulus");

    const MultiStageSupplyNetwork probe(stages);
    const VoltageTrace v = probe.computeVoltage(worst_case);
    const Volt nominal = probe.nominalVoltage();
    double excursion = 0.0;
    for (Volt x : v)
        excursion = std::max(excursion, std::abs(nominal - x));
    if (excursion <= 0.0)
        didt_fatal("worst-case stimulus produced no voltage excursion");

    const double scale = 0.05 * nominal / excursion;
    for (SupplyNetworkConfig &cfg : stages)
        cfg.dcResistance *= scale;
    return stages;
}

} // namespace didt
