#include "power/supply_network.hh"

#include <algorithm>
#include <cmath>
#include <complex>

#include "util/logging.hh"

namespace didt
{

namespace
{

using Biquad = SupplyNetwork::Recursion;

/**
 * Derive the biquad implementing the impulse-invariant discretization
 * of Z(s) = (1/C)(s + a) / (s^2 + a s + wn^2).
 */
Biquad
deriveBiquad(double r, double l, double c, double clock_hz)
{
    const double t = 1.0 / clock_hz;
    const double a = r / l;
    const double wn = 1.0 / std::sqrt(l * c);
    const double alpha = a / 2.0;
    const double wd_sq = wn * wn - alpha * alpha;
    if (wd_sq <= 0.0)
        didt_fatal("supply network is not underdamped (Q <= 0.5); "
                   "increase qualityFactor");
    const double wd = std::sqrt(wd_sq);

    // Sampled impulse response z[n] = Re[G p^n] with
    // G = (T/C)(1 - j alpha/wd), p = exp((-alpha + j wd) T).
    const std::complex<double> g =
        (t / c) * std::complex<double>(1.0, -alpha / wd);
    const std::complex<double> p =
        std::exp(std::complex<double>(-alpha * t, wd * t));

    Biquad bq;
    bq.b0 = g.real();
    bq.b1 = -(g * std::conj(p)).real();
    bq.a1 = 2.0 * p.real();
    bq.a2 = -std::norm(p);

    // Normalize the DC gain to exactly R so the IR drop is exact:
    // H(1) = (b0 + b1) / (1 - a1 - a2) must equal r.
    const double dc = (bq.b0 + bq.b1) / (1.0 - bq.a1 - bq.a2);
    if (dc <= 0.0)
        didt_panic("biquad DC gain non-positive: ", dc);
    const double scale = r / dc;
    bq.b0 *= scale;
    bq.b1 *= scale;
    return bq;
}

} // namespace

SupplyNetwork::SupplyNetwork(const SupplyNetworkConfig &config)
    : config_(config)
{
    if (config_.clockHz <= 0.0 || config_.resonantHz <= 0.0)
        didt_fatal("supply network frequencies must be positive");
    if (config_.resonantHz * 2.0 >= config_.clockHz)
        didt_fatal("resonant frequency ", config_.resonantHz,
                   " is not below Nyquist of clock ", config_.clockHz);
    if (config_.qualityFactor <= 0.5)
        didt_fatal("qualityFactor must exceed 0.5 (underdamped), got ",
                   config_.qualityFactor);
    if (config_.impedanceScale <= 0.0)
        didt_fatal("impedanceScale must be positive");
    if (config_.responseLength < 4)
        didt_fatal("responseLength too short: ", config_.responseLength);

    // Scaling R at fixed f0 and Q scales L proportionally and C
    // inversely, so |Z(f)| scales uniformly by impedanceScale.
    r_ = config_.dcResistance * config_.impedanceScale;
    const double wn = 2.0 * M_PI * config_.resonantHz;
    l_ = config_.qualityFactor * r_ / wn;
    c_ = 1.0 / (wn * wn * l_);
    recursion_ = deriveBiquad(r_, l_, c_, config_.clockHz);

    buildImpulseResponse();
}

void
SupplyNetwork::buildImpulseResponse()
{
    const Biquad &bq = recursion_;
    response_.assign(config_.responseLength, 0.0);

    // Impulse response = recursion output for i = unit impulse.
    double d1 = 0.0;
    double d2 = 0.0;
    for (std::size_t n = 0; n < response_.size(); ++n) {
        const double x0 = (n == 0) ? 1.0 : 0.0;
        const double x1 = (n == 1) ? 1.0 : 0.0;
        const double d0 = bq.b0 * x0 + bq.b1 * x1 + bq.a1 * d1 + bq.a2 * d2;
        response_[n] = d0;
        d2 = d1;
        d1 = d0;
    }
}

Hertz
SupplyNetwork::resonantFrequency() const
{
    return 1.0 / (2.0 * M_PI * std::sqrt(l_ * c_));
}

double
SupplyNetwork::impedanceAt(Hertz f) const
{
    const std::complex<double> s(0.0, 2.0 * M_PI * f);
    const std::complex<double> num = r_ + s * l_;
    const std::complex<double> den = 1.0 + s * r_ * c_ + s * s * l_ * c_;
    return std::abs(num / den);
}

VoltageTrace
SupplyNetwork::computeVoltage(const CurrentTrace &current) const
{
    VoltageTrace voltage;
    computeVoltageInto(current, voltage);
    return voltage;
}

void
SupplyNetwork::computeVoltageInto(const CurrentTrace &current,
                                  VoltageTrace &voltage) const
{
    voltage.assign(current.size(), config_.nominalVoltage);
    if (current.empty())
        return;

    const Biquad &bq = recursion_;

    // Warm start at steady state for the initial current so the trace
    // does not begin with an artificial step transient.
    const double i0 = current[0];
    double d1 = r_ * i0;
    double d2 = d1;
    double x1 = i0;
    for (std::size_t n = 0; n < current.size(); ++n) {
        const double x0 = current[n];
        const double d0 = bq.b0 * x0 + bq.b1 * x1 + bq.a1 * d1 + bq.a2 * d2;
        voltage[n] = config_.nominalVoltage - d0;
        d2 = d1;
        d1 = d0;
        x1 = x0;
    }
}

Volt
SupplyNetwork::steadyStateVoltage(Amp current) const
{
    return config_.nominalVoltage - r_ * current;
}

SupplyStream::SupplyStream(const SupplyNetwork &network)
    : recursion_(network.recursion()),
      nominal_(network.config().nominalVoltage),
      steadyGain_(network.resistance()),
      voltage_(network.config().nominalVoltage)
{
}

Volt
SupplyStream::push(Amp current)
{
    if (!primed_) {
        const double droop = steadyGain_ * current;
        d1_ = droop;
        d2_ = droop;
        x1_ = current;
        primed_ = true;
    }
    const double d0 = recursion_.b0 * current + recursion_.b1 * x1_ +
                      recursion_.a1 * d1_ + recursion_.a2 * d2_;
    d2_ = d1_;
    d1_ = d0;
    x1_ = current;
    voltage_ = nominal_ - d0;
    return voltage_;
}

SupplyNetworkConfig
calibrateTargetImpedance(const SupplyNetworkConfig &base,
                         const CurrentTrace &worst_case)
{
    if (worst_case.empty())
        didt_fatal("calibrateTargetImpedance needs a non-empty stimulus");

    // Droop is linear in dcResistance (at fixed f0 and Q every element
    // of Z scales uniformly), so one probe run determines the answer.
    SupplyNetworkConfig probe = base;
    probe.impedanceScale = 1.0;
    probe.dcResistance = 1.0;
    SupplyNetwork network(probe);
    const VoltageTrace v = network.computeVoltage(worst_case);

    double max_droop = 0.0;
    double min_droop = 0.0;
    for (std::size_t n = 0; n < v.size(); ++n) {
        const double droop = probe.nominalVoltage - v[n];
        max_droop = std::max(max_droop, droop);
        min_droop = std::min(min_droop, droop);
    }
    const double excursion = std::max(max_droop, -min_droop);
    if (excursion <= 0.0)
        didt_fatal("worst-case stimulus produced no voltage excursion");

    SupplyNetworkConfig out = base;
    out.dcResistance = 0.05 * base.nominalVoltage / excursion;
    return out;
}

} // namespace didt
