/**
 * @file
 * Second-order linear model of the processor power-supply network
 * (paper Section 3.1, Figure 5).
 *
 * The die is a current source looking into the parallel combination of
 * the on-die/package decoupling capacitance C and the series R-L branch
 * to the voltage regulator:
 *
 *     Z(s) = (R + sL) / (1 + sRC + s^2 LC)
 *
 * This impedance is R at DC (the IR drop), peaks near the resonant
 * frequency f0 = 1/(2 pi sqrt(LC)) — placed in the problematic
 * 50-200 MHz mid-frequency band — and rolls off at high frequency.
 * Supply voltage is V(t) = Vdd - (z * i)(t) where z is the impulse
 * response and i the per-cycle current draw (paper Equation 6).
 */

#ifndef DIDT_POWER_SUPPLY_NETWORK_HH
#define DIDT_POWER_SUPPLY_NETWORK_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace didt
{

/** User-facing parameters of the supply network model. */
struct SupplyNetworkConfig
{
    /** Processor clock frequency (paper: 3.0 GHz). */
    Hertz clockHz = 3.0e9;

    /** Resonant frequency of the supply network (50-200 MHz band). */
    Hertz resonantHz = 125.0e6;

    /** Quality factor of the resonance (peak/DC impedance ~ Q^2). */
    double qualityFactor = 5.0;

    /** Nominal supply voltage (paper: 1.0 V). */
    Volt nominalVoltage = 1.0;

    /**
     * Target-impedance scale. 1.0 (100%) is a supply calibrated so the
     * worst-case stimulus just stays inside the +/-5% band; 1.5 (150%)
     * has 1.5x that impedance and needs architectural control.
     */
    double impedanceScale = 1.0;

    /**
     * DC resistance of the *unscaled* (100%) network in ohms. Set by
     * calibration; the default suits the bundled processor model whose
     * current swings span roughly 10-90 A.
     */
    double dcResistance = 5.0e-4;

    /** Length of the truncated impulse response in cycles. */
    std::size_t responseLength = 2048;
};

/**
 * The second-order supply network: derives R, L, C from the config,
 * exposes the cycle-sampled impulse response, the frequency response,
 * and full-trace voltage computation.
 */
class SupplyNetwork
{
  public:
    /**
     * Biquad recursion coefficients of the impulse-invariant
     * discretization; droop[n] = b0 i[n] + b1 i[n-1]
     * + a1 droop[n-1] + a2 droop[n-2].
     */
    struct Recursion
    {
        double b0, b1, a1, a2;
    };

    /** Build the network and precompute its impulse response. */
    explicit SupplyNetwork(const SupplyNetworkConfig &config);

    /** The discrete-time recursion implementing this network. */
    const Recursion &recursion() const { return recursion_; }

    /** The configuration this network was built from. */
    const SupplyNetworkConfig &config() const { return config_; }

    /** Effective DC resistance (scaled) in ohms. */
    double resistance() const { return r_; }

    /** Effective loop inductance in henries. */
    double inductance() const { return l_; }

    /** Effective decoupling capacitance in farads. */
    double capacitance() const { return c_; }

    /** Resonant frequency in hertz. */
    Hertz resonantFrequency() const;

    /**
     * Cycle-sampled impulse response z[n] in volts per (ampere-cycle):
     * the voltage droop sequence caused by a one-ampere, one-cycle
     * current pulse.
     */
    const std::vector<double> &impulseResponse() const { return response_; }

    /** Impedance magnitude |Z(j 2 pi f)| in ohms at frequency @p f. */
    double impedanceAt(Hertz f) const;

    /**
     * Compute the supply voltage trace for a current trace:
     * V[n] = Vdd - sum_m z[m] i[n-m] (paper Equation 6). The
     * convolution warm-up uses i[0] for cycles before the trace start
     * so the initial voltage reflects steady-state at the initial load.
     */
    VoltageTrace computeVoltage(const CurrentTrace &current) const;

    /**
     * computeVoltage into caller-owned storage: @p voltage is resized
     * to current.size(), reusing its capacity so repeated evaluations
     * never reallocate. Identical numerics to computeVoltage.
     */
    void computeVoltageInto(const CurrentTrace &current,
                            VoltageTrace &voltage) const;

    /** Steady-state voltage at a constant current draw (IR drop). */
    Volt steadyStateVoltage(Amp current) const;

    /** Allowed voltage band: nominal +/- 5% (paper Section 3). */
    Volt lowFaultLevel() const { return config_.nominalVoltage * 0.95; }

    /** Upper fault level: nominal + 5%. */
    Volt highFaultLevel() const { return config_.nominalVoltage * 1.05; }

  private:
    SupplyNetworkConfig config_;
    double r_;
    double l_;
    double c_;
    Recursion recursion_;
    std::vector<double> response_;

    void buildImpulseResponse();
};

/**
 * Cycle-by-cycle streaming evaluation of a supply network: push one
 * current sample per cycle and read the resulting supply voltage.
 * Used by the closed-loop controller co-simulation.
 */
class SupplyStream
{
  public:
    /** Bind to a network; starts in steady state at zero current. */
    explicit SupplyStream(const SupplyNetwork &network);

    /**
     * Advance one cycle with current draw @p current and return the
     * resulting supply voltage. The first push warm-starts the network
     * at steady state for that current.
     */
    Volt push(Amp current);

    /** Voltage after the most recent push (nominal before any push). */
    Volt voltage() const { return voltage_; }

  private:
    SupplyNetwork::Recursion recursion_;
    Volt nominal_;
    double steadyGain_; // DC resistance, for warm start
    double d1_ = 0.0;
    double d2_ = 0.0;
    double x1_ = 0.0;
    bool primed_ = false;
    Volt voltage_;
};

/**
 * Find the 100%-target-impedance DC resistance: the largest unscaled
 * dcResistance for which @p worst_case current just keeps the voltage
 * inside the +/-5% band (paper Section 3.1: target impedance is the
 * maximum impedance that still meets the band under a worst-case
 * execution sequence). Performed by bisection on the scale.
 *
 * @param base config whose dcResistance is to be calibrated
 * @param worst_case the worst-case current stimulus
 * @return a copy of @p base with dcResistance set
 */
SupplyNetworkConfig calibrateTargetImpedance(const SupplyNetworkConfig &base,
                                             const CurrentTrace &worst_case);

} // namespace didt

#endif // DIDT_POWER_SUPPLY_NETWORK_HH
