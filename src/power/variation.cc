#include "power/variation.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace didt
{

namespace
{

/**
 * The splitmix64 finalizer (same mixing steps as the workload
 * generator's seed derivation; duplicated here because power/ sits
 * below workload/ in the layering).
 */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Clamp a standard normal to +/- 4 sigma so corner draws stay sane. */
double
clampZ(double z)
{
    return std::clamp(z, -4.0, 4.0);
}

/** Mean-one lognormal factor exp(sigma z - sigma^2 / 2). */
double
lognormalFactor(double sigma, double z)
{
    return std::exp(sigma * clampZ(z) - 0.5 * sigma * sigma);
}

} // namespace

std::uint64_t
deriveDrawSeed(std::uint64_t mc_seed, std::size_t draw_index)
{
    return mix64((mc_seed ^ 0x5d1d7c5a11ab0b37ULL) +
                 0x9e3779b97f4a7c15ULL *
                     (static_cast<std::uint64_t>(draw_index) + 1));
}

SupplyNetworkConfig
drawSupplyConfig(const SupplyNetworkConfig &base,
                 const SupplyVariationSpec &variation,
                 std::uint64_t draw_seed)
{
    if (variation.sigmaR < 0.0 || variation.sigmaResonance < 0.0 ||
        variation.sigmaQ < 0.0) {
        didt_fatal("supply variation sigmas must be >= 0, got r=",
                   variation.sigmaR, " f=", variation.sigmaResonance,
                   " q=", variation.sigmaQ);
    }

    Rng rng(draw_seed);
    // Fixed draw order, always all three, so a dimension's stream does
    // not depend on which other dimensions are enabled.
    const double zr = rng.normal();
    const double zf = rng.normal();
    const double zq = rng.normal();

    SupplyNetworkConfig out = base;
    if (variation.sigmaR > 0.0)
        out.dcResistance =
            base.dcResistance * lognormalFactor(variation.sigmaR, zr);
    if (variation.sigmaResonance > 0.0) {
        out.resonantHz = base.resonantHz *
                         (1.0 + variation.sigmaResonance * clampZ(zf));
        // Keep the resonance inside the band the SupplyNetwork
        // constructor accepts: strictly below Nyquist, above DC.
        out.resonantHz = std::clamp(out.resonantHz, 1.0e6,
                                    0.45 * base.clockHz);
    }
    if (variation.sigmaQ > 0.0)
        out.qualityFactor =
            std::max(0.6, base.qualityFactor *
                              lognormalFactor(variation.sigmaQ, zq));
    return out;
}

} // namespace didt
