#include "power/trace_io.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace didt
{

namespace
{

constexpr char kMagic[8] = {'D', 'I', 'D', 'T', 'T', 'R', 'C', '1'};

} // namespace

void
writeTraceText(std::ostream &os, const CurrentTrace &trace,
               const std::string &comment)
{
    if (!comment.empty()) {
        std::istringstream lines(comment);
        std::string line;
        while (std::getline(lines, line))
            os << "# " << line << '\n';
    }
    os.precision(10);
    for (double sample : trace)
        os << sample << '\n';
}

void
writeTraceText(const std::string &path, const CurrentTrace &trace,
               const std::string &comment)
{
    std::ofstream out(path);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    writeTraceText(out, trace, comment);
    if (!out)
        didt_fatal("error writing trace to ", path);
}

namespace
{

/**
 * Parse a text trace stream. On a malformed sample returns nullopt and
 * describes the failure in @p error (when non-null).
 */
std::optional<CurrentTrace>
parseTraceText(std::istream &is, std::string *error)
{
    CurrentTrace trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::istringstream fields(line);
        double value;
        while (fields >> value)
            trace.push_back(value);
        if (!fields.eof()) {
            if (error)
                *error = detail::concat("malformed trace sample at line ",
                                        lineno, ": '", line, "'");
            return std::nullopt;
        }
    }
    return trace;
}

} // namespace

CurrentTrace
readTraceText(std::istream &is)
{
    std::string error;
    std::optional<CurrentTrace> trace = parseTraceText(is, &error);
    if (!trace)
        didt_fatal(error);
    return *std::move(trace);
}

CurrentTrace
readTraceText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        didt_fatal("cannot open trace file ", path);
    return readTraceText(in);
}

void
writeTraceBinary(const std::string &path, const CurrentTrace &trace)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    out.write(kMagic, sizeof(kMagic));
    const std::uint64_t count = trace.size();
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    out.write(reinterpret_cast<const char *>(trace.data()),
              static_cast<std::streamsize>(count * sizeof(double)));
    if (!out)
        didt_fatal("error writing trace to ", path);
}

CurrentTrace
readTraceBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        didt_fatal("cannot open trace file ", path);
    char magic[sizeof(kMagic)];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        didt_fatal(path, " is not a didt binary trace");
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in)
        didt_fatal(path, ": truncated header");
    CurrentTrace trace(count);
    in.read(reinterpret_cast<char *>(trace.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
    if (!in)
        didt_fatal(path, ": truncated sample data");
    return trace;
}

std::optional<CurrentTrace>
tryReadTraceText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    return parseTraceText(in, nullptr);
}

std::optional<CurrentTrace>
tryReadTraceBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    char magic[sizeof(kMagic)];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in)
        return std::nullopt;
    CurrentTrace trace(count);
    in.read(reinterpret_cast<char *>(trace.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
    if (!in)
        return std::nullopt;
    return trace;
}

} // namespace didt
