#include "power/trace_io.hh"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>

#include "util/logging.hh"
#include "verify/failpoint.hh"

namespace didt
{

namespace
{

constexpr char kMagic[8] = {'D', 'I', 'D', 'T', 'T', 'R', 'C', '1'};
constexpr char kSetMagic[8] = {'D', 'I', 'D', 'T', 'T', 'R', 'S', '1'};

} // namespace

void
writeTraceText(std::ostream &os, const CurrentTrace &trace,
               const std::string &comment)
{
    if (!comment.empty()) {
        std::istringstream lines(comment);
        std::string line;
        while (std::getline(lines, line))
            os << "# " << line << '\n';
    }
    os.precision(10);
    for (double sample : trace)
        os << sample << '\n';
}

void
writeTraceText(const std::string &path, const CurrentTrace &trace,
               const std::string &comment)
{
    std::ofstream out(path);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    writeTraceText(out, trace, comment);
    if (!out)
        didt_fatal("error writing trace to ", path);
}

namespace
{

/**
 * Parse a text trace stream. On a malformed sample returns nullopt and
 * describes the failure in @p error (when non-null).
 */
std::optional<CurrentTrace>
parseTraceText(std::istream &is, std::string *error)
{
    CurrentTrace trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::istringstream fields(line);
        double value;
        while (fields >> value)
            trace.push_back(value);
        if (!fields.eof()) {
            if (error)
                *error = detail::concat("malformed trace sample at line ",
                                        lineno, ": '", line, "'");
            return std::nullopt;
        }
    }
    return trace;
}

} // namespace

CurrentTrace
readTraceText(std::istream &is)
{
    std::string error;
    std::optional<CurrentTrace> trace = parseTraceText(is, &error);
    if (!trace)
        didt_fatal(error);
    return *std::move(trace);
}

CurrentTrace
readTraceText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        didt_fatal("cannot open trace file ", path);
    return readTraceText(in);
}

void
writeTraceBinary(const std::string &path, const CurrentTrace &trace)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    out.write(kMagic, sizeof(kMagic));
    const std::uint64_t count = trace.size();
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    out.write(reinterpret_cast<const char *>(trace.data()),
              static_cast<std::streamsize>(count * sizeof(double)));
    if (!out)
        didt_fatal("error writing trace to ", path);
}

namespace
{

/**
 * Parse the binary trace format. On any malformation returns nullopt
 * and describes the failure in @p error (when non-null).
 *
 * The header's sample count is not trusted: data is read in bounded
 * chunks and the buffer grows only as bytes actually arrive, so a
 * corrupt count claiming petabytes fails cleanly as "truncated sample
 * data" instead of forcing a huge up-front allocation (the bug that
 * let a short header read escape the repository's corruption
 * fallback as a thrown bad_alloc).
 */
std::optional<CurrentTrace>
parseTraceBinary(std::istream &in, std::string *error)
{
    char magic[sizeof(kMagic)];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        if (error)
            *error = "is not a didt binary trace";
        return std::nullopt;
    }
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in) {
        if (error)
            *error = "truncated header";
        return std::nullopt;
    }
    CurrentTrace trace;
    constexpr std::uint64_t kChunkSamples = std::uint64_t{1} << 20;
    std::uint64_t done = 0;
    while (done < count) {
        const std::uint64_t step = std::min(kChunkSamples, count - done);
        try {
            trace.resize(static_cast<std::size_t>(done + step));
        } catch (const std::bad_alloc &) {
            if (error)
                *error = "sample count exceeds memory";
            return std::nullopt;
        }
        in.read(reinterpret_cast<char *>(trace.data() + done),
                static_cast<std::streamsize>(step * sizeof(double)));
        if (!in) {
            if (error)
                *error = "truncated sample data";
            return std::nullopt;
        }
        done += step;
    }
    return trace;
}

} // namespace

CurrentTrace
readTraceBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        didt_fatal("cannot open trace file ", path);
    std::string error;
    std::optional<CurrentTrace> trace = parseTraceBinary(in, &error);
    if (!trace)
        didt_fatal(path, " ", error);
    return *std::move(trace);
}

std::optional<CurrentTrace>
tryReadTraceText(std::istream &is)
{
    if (DIDT_FAILPOINT("trace_io.read_text"))
        return std::nullopt;
    return parseTraceText(is, nullptr);
}

std::optional<CurrentTrace>
tryReadTraceText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    return tryReadTraceText(in);
}

std::optional<CurrentTrace>
tryReadTraceBinary(std::istream &is)
{
    if (DIDT_FAILPOINT("trace_io.read_binary"))
        return std::nullopt;
    return parseTraceBinary(is, nullptr);
}

std::optional<CurrentTrace>
tryReadTraceBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    return tryReadTraceBinary(in);
}

namespace
{

/** Write one length-prefixed sample array. */
void
writeSamples(std::ostream &os, const CurrentTrace &trace)
{
    const std::uint64_t count = trace.size();
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    os.write(reinterpret_cast<const char *>(trace.data()),
             static_cast<std::streamsize>(count * sizeof(double)));
}

/**
 * Read one length-prefixed sample array with the same chunked,
 * bounded-allocation discipline as parseTraceBinary.
 */
bool
parseSamples(std::istream &in, CurrentTrace &trace, std::string *error)
{
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in) {
        if (error)
            *error = "truncated sample count";
        return false;
    }
    trace.clear();
    constexpr std::uint64_t kChunkSamples = std::uint64_t{1} << 20;
    std::uint64_t done = 0;
    while (done < count) {
        const std::uint64_t step = std::min(kChunkSamples, count - done);
        try {
            trace.resize(static_cast<std::size_t>(done + step));
        } catch (const std::bad_alloc &) {
            if (error)
                *error = "sample count exceeds memory";
            return false;
        }
        in.read(reinterpret_cast<char *>(trace.data() + done),
                static_cast<std::streamsize>(step * sizeof(double)));
        if (!in) {
            if (error)
                *error = "truncated sample data";
            return false;
        }
        done += step;
    }
    return true;
}

/** More cores than this is certainly corruption, not a chip. */
constexpr std::uint64_t kMaxTraceSetCores = 1 << 16;

/**
 * Parse the multi-trace format: magic, core count, aggregate samples,
 * then each core's samples in core-id order.
 */
std::optional<TraceSet>
parseTraceSetBinary(std::istream &in, std::string *error)
{
    char magic[sizeof(kSetMagic)];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kSetMagic, sizeof(kSetMagic)) != 0) {
        if (error)
            *error = "is not a didt binary trace set";
        return std::nullopt;
    }
    std::uint64_t cores = 0;
    in.read(reinterpret_cast<char *>(&cores), sizeof(cores));
    if (!in) {
        if (error)
            *error = "truncated header";
        return std::nullopt;
    }
    if (cores == 0 || cores > kMaxTraceSetCores) {
        if (error)
            *error = detail::concat("implausible core count ", cores);
        return std::nullopt;
    }
    TraceSet set;
    if (!parseSamples(in, set.aggregate, error))
        return std::nullopt;
    set.perCore.resize(static_cast<std::size_t>(cores));
    for (CurrentTrace &trace : set.perCore)
        if (!parseSamples(in, trace, error))
            return std::nullopt;
    return set;
}

} // namespace

void
writeTraceSetBinary(std::ostream &os, const TraceSet &set)
{
    os.write(kSetMagic, sizeof(kSetMagic));
    const std::uint64_t cores = set.perCore.size();
    os.write(reinterpret_cast<const char *>(&cores), sizeof(cores));
    writeSamples(os, set.aggregate);
    for (const CurrentTrace &trace : set.perCore)
        writeSamples(os, trace);
}

void
writeTraceSetBinary(const std::string &path, const TraceSet &set)
{
    if (set.perCore.empty())
        didt_fatal("a trace set needs at least one per-core trace");
    std::ofstream out(path, std::ios::binary);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    writeTraceSetBinary(out, set);
    if (!out)
        didt_fatal("error writing trace set to ", path);
}

TraceSet
readTraceSetBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        didt_fatal("cannot open trace file ", path);
    std::string error;
    std::optional<TraceSet> set = parseTraceSetBinary(in, &error);
    if (!set)
        didt_fatal(path, " ", error);
    return *std::move(set);
}

std::optional<TraceSet>
tryReadTraceSetBinary(std::istream &is)
{
    if (DIDT_FAILPOINT("trace_io.read_set"))
        return std::nullopt;
    return parseTraceSetBinary(is, nullptr);
}

std::optional<TraceSet>
tryReadTraceSetBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    return tryReadTraceSetBinary(in);
}

} // namespace didt
