#include "power/convolution.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace didt
{

void
convolveInto(std::span<const double> x, std::span<const double> kernel,
             std::vector<double> &out)
{
    out.resize(x.size());
    const std::size_t klen = kernel.size();
    for (std::size_t n = 0; n < x.size(); ++n) {
        const std::size_t mmax = std::min(n + 1, klen);
        double acc = 0.0;
        for (std::size_t m = 0; m < mmax; ++m)
            acc += kernel[m] * x[n - m];
        out[n] = acc;
    }
}

std::vector<double>
convolve(std::span<const double> x, std::span<const double> kernel)
{
    std::vector<double> out;
    convolveInto(x, kernel, out);
    return out;
}

StreamingConvolver::StreamingConvolver(std::span<const double> kernel)
    : kernel_(kernel.begin(), kernel.end())
{
    if (kernel_.empty())
        didt_panic("StreamingConvolver needs a non-empty kernel");
    history_.assign(kernel_.size(), 0.0);
}

void
StreamingConvolver::push(double x)
{
    if (!primed_) {
        // Steady-state warm start: pretend x was the input forever.
        std::fill(history_.begin(), history_.end(), x);
        primed_ = true;
    }
    head_ = (head_ + history_.size() - 1) % history_.size();
    history_[head_] = x;

    double acc = 0.0;
    std::size_t idx = head_;
    for (std::size_t m = 0; m < kernel_.size(); ++m) {
        acc += kernel_[m] * history_[idx];
        idx = (idx + 1) % history_.size();
    }
    value_ = acc;
}

void
StreamingConvolver::reset()
{
    std::fill(history_.begin(), history_.end(), 0.0);
    head_ = 0;
    primed_ = false;
    value_ = 0.0;
}

std::vector<double>
truncateKernel(std::span<const double> kernel, double energy_fraction)
{
    if (kernel.empty())
        didt_panic("truncateKernel on empty kernel");
    if (!(energy_fraction > 0.0 && energy_fraction <= 1.0))
        didt_panic("energy_fraction must be in (0,1], got ", energy_fraction);

    double total = 0.0;
    for (double v : kernel)
        total += v * v;
    if (total == 0.0)
        return {kernel.begin(), kernel.begin() + 1};

    double acc = 0.0;
    std::size_t cut = kernel.size();
    for (std::size_t n = 0; n < kernel.size(); ++n) {
        acc += kernel[n] * kernel[n];
        if (acc >= energy_fraction * total) {
            cut = n + 1;
            break;
        }
    }
    return {kernel.begin(), kernel.begin() + static_cast<long>(cut)};
}

} // namespace didt
