#include "power/convolution.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/simd.hh"

namespace didt
{

void
convolveInto(std::span<const double> x, std::span<const double> kernel,
             std::vector<double> &out)
{
    out.resize(x.size());
    const std::size_t klen = kernel.size();
    if (klen == 0) {
        std::fill(out.begin(), out.end(), 0.0);
        return;
    }

    // Split at the point where every kernel tap is inside the signal:
    // the prologue keeps the per-output min(n + 1, klen) ramp, the
    // steady state runs all klen taps through the dispatched SIMD
    // kernel with the ramp check hoisted out of the inner loop. Tap
    // order per output is unchanged, so results stay bit-identical.
    const std::size_t ramp = std::min(x.size(), klen - 1);
    for (std::size_t n = 0; n < ramp; ++n) {
        double acc = 0.0;
        for (std::size_t m = 0; m < n + 1; ++m)
            acc += kernel[m] * x[n - m];
        out[n] = acc;
    }
    if (ramp < x.size())
        simd::kernels().convolveSteady(x.data(), ramp, x.size() - ramp,
                                       kernel.data(), klen, out.data());
}

std::vector<double>
convolve(std::span<const double> x, std::span<const double> kernel)
{
    std::vector<double> out;
    convolveInto(x, kernel, out);
    return out;
}

StreamingConvolver::StreamingConvolver(std::span<const double> kernel)
    : kernel_(kernel.begin(), kernel.end())
{
    if (kernel_.empty())
        didt_panic("StreamingConvolver needs a non-empty kernel");
    history_.assign(kernel_.size(), 0.0);
}

void
StreamingConvolver::push(double x)
{
    if (!primed_) {
        // Steady-state warm start: pretend x was the input forever.
        std::fill(history_.begin(), history_.end(), x);
        primed_ = true;
    }
    const std::size_t len = history_.size();
    head_ = head_ == 0 ? len - 1 : head_ - 1;
    history_[head_] = x;

    // Walk the ring as two contiguous segments (newest-to-oldest wraps
    // exactly once), replacing a modulo per tap with two tight loops.
    // Tap order m = 0..len-1 is unchanged, so the accumulated value is
    // bit-identical to the modulo walk.
    const std::size_t first = len - head_;
    double acc = 0.0;
    for (std::size_t m = 0; m < first; ++m)
        acc += kernel_[m] * history_[head_ + m];
    for (std::size_t m = first; m < len; ++m)
        acc += kernel_[m] * history_[m - first];
    value_ = acc;
}

void
StreamingConvolver::reset()
{
    std::fill(history_.begin(), history_.end(), 0.0);
    head_ = 0;
    primed_ = false;
    value_ = 0.0;
}

std::vector<double>
truncateKernel(std::span<const double> kernel, double energy_fraction)
{
    if (kernel.empty())
        didt_panic("truncateKernel on empty kernel");
    if (!(energy_fraction > 0.0 && energy_fraction <= 1.0))
        didt_panic("energy_fraction must be in (0,1], got ", energy_fraction);

    double total = 0.0;
    for (double v : kernel)
        total += v * v;
    if (total == 0.0)
        return {kernel.begin(), kernel.begin() + 1};

    double acc = 0.0;
    std::size_t cut = kernel.size();
    for (std::size_t n = 0; n < kernel.size(); ++n) {
        acc += kernel[n] * kernel[n];
        if (acc >= energy_fraction * total) {
            cut = n + 1;
            break;
        }
    }
    return {kernel.begin(), kernel.begin() + static_cast<long>(cut)};
}

} // namespace didt
