#include "power/stimulus.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace didt
{

CurrentTrace
resonantSquareWave(Hertz clock_hz, Hertz resonant_hz, Amp low, Amp high,
                   std::size_t periods)
{
    if (resonant_hz <= 0.0 || clock_hz <= 0.0)
        didt_panic("resonantSquareWave frequencies must be positive");
    const double cycles_per_period = clock_hz / resonant_hz;
    const auto half =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     std::lround(cycles_per_period / 2.0)));
    CurrentTrace trace;
    trace.reserve(2 * half * periods);
    for (std::size_t p = 0; p < periods; ++p) {
        trace.insert(trace.end(), half, high);
        trace.insert(trace.end(), half, low);
    }
    return trace;
}

CurrentTrace
constantCurrent(Amp level, std::size_t cycles)
{
    return CurrentTrace(cycles, level);
}

CurrentTrace
stepCurrent(Amp before, Amp after, std::size_t cycles, std::size_t at)
{
    CurrentTrace trace(cycles, before);
    for (std::size_t n = std::min(at, cycles); n < cycles; ++n)
        trace[n] = after;
    return trace;
}

CurrentTrace
gaussianCurrent(Amp mean, Amp stddev, std::size_t cycles, Rng &rng)
{
    CurrentTrace trace(cycles);
    for (auto &sample : trace)
        sample = std::max(0.0, rng.normal(mean, stddev));
    return trace;
}

CurrentTrace
sineCurrent(Amp mean, Amp amplitude, Hertz freq_hz, Hertz clock_hz,
            std::size_t cycles)
{
    CurrentTrace trace(cycles);
    const double w = 2.0 * M_PI * freq_hz / clock_hz;
    for (std::size_t n = 0; n < cycles; ++n)
        trace[n] = mean + amplitude * std::sin(w * static_cast<double>(n));
    return trace;
}

} // namespace didt
