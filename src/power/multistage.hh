/**
 * @file
 * Multi-stage power-supply network.
 *
 * Real power-delivery paths have several anti-resonances — on-die
 * decap against package inductance (the paper's 50-200 MHz problem
 * band), package bulk capacitance against board inductance (single-
 * digit MHz), and so on. The paper models one second-order stage; this
 * extension composes N of them in series: impedances and impulse
 * responses add, and the voltage is computed by running the stages'
 * biquad recursions in parallel. The wavelet monitor and the variance
 * model operate on the combined impulse response unchanged, which is
 * exactly the point of the factorized formulation.
 */

#ifndef DIDT_POWER_MULTISTAGE_HH
#define DIDT_POWER_MULTISTAGE_HH

#include <vector>

#include "power/supply_network.hh"
#include "util/types.hh"

namespace didt
{

/** A series composition of second-order supply stages. */
class MultiStageSupplyNetwork
{
  public:
    /**
     * @param stages per-stage configurations; all must share the clock
     *        and nominal voltage of the first (fatal otherwise)
     */
    explicit MultiStageSupplyNetwork(
        std::vector<SupplyNetworkConfig> stages);

    /** The composed stages. */
    const std::vector<SupplyNetwork> &stages() const { return stages_; }

    /** Nominal supply voltage. */
    Volt nominalVoltage() const { return nominal_; }

    /** Combined cycle-sampled impulse response (sum over stages). */
    const std::vector<double> &impulseResponse() const { return response_; }

    /** Combined impedance magnitude |sum_i Z_i(j 2 pi f)|. */
    double impedanceAt(Hertz f) const;

    /** Total DC resistance (sum of stage resistances). */
    double resistance() const;

    /** Voltage trace under @p current (parallel stage recursions). */
    VoltageTrace computeVoltage(const CurrentTrace &current) const;

    /** Steady-state voltage at constant current. */
    Volt steadyStateVoltage(Amp current) const;

    /** Lower fault level (nominal - 5%). */
    Volt lowFaultLevel() const { return nominal_ * 0.95; }

    /** Upper fault level (nominal + 5%). */
    Volt highFaultLevel() const { return nominal_ * 1.05; }

  private:
    std::vector<SupplyNetwork> stages_;
    Volt nominal_;
    std::vector<double> response_;
};

/**
 * Scale all stage DC resistances by a common factor so the worst-case
 * stimulus just keeps the combined network inside the +/-5% band
 * (multi-stage analogue of calibrateTargetImpedance; droop is linear
 * in the common scale).
 */
std::vector<SupplyNetworkConfig>
calibrateMultiStage(std::vector<SupplyNetworkConfig> stages,
                    const CurrentTrace &worst_case);

} // namespace didt

#endif // DIDT_POWER_MULTISTAGE_HH
