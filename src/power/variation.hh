/**
 * @file
 * Process-variation model of the supply network.
 *
 * Real chips do not see one fixed RLC network: die-to-die variation in
 * metallization, package parasitics, and decap density moves the DC
 * resistance, the resonance placement, and the damping of the
 * mid-frequency peak. Following the stochastic power-grid literature,
 * the grid response is treated as a random variable: each Monte Carlo
 * draw perturbs the nominal SupplyNetworkConfig with mean-one
 * multiplicative factors and a deterministic, splitmix64-derived
 * per-draw seed, so draws are reproducible and cache-addressable the
 * same way workload mix seeds are.
 */

#ifndef DIDT_POWER_VARIATION_HH
#define DIDT_POWER_VARIATION_HH

#include <cstddef>
#include <cstdint>

#include "power/supply_network.hh"

namespace didt
{

/**
 * Relative variation sigmas for the supply-network random variables.
 * A sigma of zero disables that dimension; the all-zero default draws
 * configs bit-identical to the nominal network.
 */
struct SupplyVariationSpec
{
    /** Lognormal sigma on the DC resistance (and thus R, L, C). */
    double sigmaR = 0.0;

    /** Normal relative sigma on the resonant-frequency placement. */
    double sigmaResonance = 0.0;

    /** Lognormal sigma on the quality factor (resonance damping). */
    double sigmaQ = 0.0;

    /** True when any dimension is enabled. */
    bool any() const
    {
        return sigmaR > 0.0 || sigmaResonance > 0.0 || sigmaQ > 0.0;
    }
};

/**
 * Deterministic per-draw seed: a splitmix64 finalizer over the
 * campaign-level Monte Carlo seed and the draw index, offset by a
 * stream tag so draw seeds never collide with the workload core-seed
 * stream derived from the same campaign seed.
 */
std::uint64_t deriveDrawSeed(std::uint64_t mc_seed, std::size_t draw_index);

/**
 * Draw one varied supply config. Exactly three standard normals are
 * consumed in a fixed order (R, resonance, Q) regardless of which
 * sigmas are enabled, so enabling one dimension never shifts another
 * dimension's stream. Zero-sigma dimensions are left bit-identical to
 * @p base. Drawn values are clamped to the region the SupplyNetwork
 * constructor accepts (Q > 0.5, resonance below Nyquist).
 */
SupplyNetworkConfig drawSupplyConfig(const SupplyNetworkConfig &base,
                                     const SupplyVariationSpec &variation,
                                     std::uint64_t draw_seed);

} // namespace didt

#endif // DIDT_POWER_VARIATION_HH
