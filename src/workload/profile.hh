/**
 * @file
 * Synthetic SPEC CPU2000 benchmark profiles.
 *
 * The paper evaluates on all 26 SPEC 2000 benchmarks at SimPoint
 * simulation points. Binaries and traces are not redistributable, so
 * each benchmark is replaced by a parameterized synthetic instruction
 * stream whose event rates (instruction mix, branch predictability,
 * cache working sets, dependency structure, phase behaviour) are
 * calibrated to the benchmark's published characteristics. The dI/dt
 * analyses only consume the resulting per-cycle current waveform and
 * event stream, so matching those rates reproduces the paper's
 * benchmark-level contrasts (see DESIGN.md, substitution table).
 */

#ifndef DIDT_WORKLOAD_PROFILE_HH
#define DIDT_WORKLOAD_PROFILE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace didt
{

/** Behavioural parameters of one execution phase. */
struct WorkloadPhase
{
    /** Fraction of instructions that are loads. */
    double loadFrac = 0.25;

    /** Fraction of instructions that are stores. */
    double storeFrac = 0.10;

    /** Fraction of instructions that are conditional branches. */
    double branchFrac = 0.15;

    /** Of the remaining ALU ops, fraction that are floating point. */
    double fpFrac = 0.0;

    /** Of arithmetic ops, fraction that are multiplies. */
    double multFrac = 0.05;

    /** Of arithmetic ops, fraction that are divides. */
    double divFrac = 0.005;

    /** Probability a data access falls in the L1-resident hot set. */
    double hotProb = 0.90;

    /** Probability it falls in the L2-resident warm set. */
    double warmProb = 0.08;
    // cold (streaming, memory-missing) probability = 1 - hot - warm

    /** Probability a load's address depends on the previous load
     *  (pointer chasing; serializes misses as in mcf). */
    double chaseProb = 0.0;

    /**
     * Probability a non-load instruction depends on the most recent
     * load. Combined with chasing through L2-resident data this gates
     * bursts of work behind each ~20-cycle L2 hit — the machine-wide
     * oscillation in the supply's resonant band that makes a
     * benchmark a dI/dt stressor.
     */
    double gateOnLoadProb = 0.0;

    /**
     * When non-zero, use this fixed input-dependency distance instead
     * of the geometric draw: a perfectly regular dependency lattice
     * that issues smoothly (low current variance, as in vpr/gap).
     */
    std::uint32_t depFixed = 0;

    /** Fraction of static branches that are strongly biased. */
    double predictableBranchFrac = 0.9;

    /** Geometric parameter for dependency distances; larger means
     *  nearer producers and less ILP. */
    double depGeomP = 0.35;

    /** Probability an instruction has a second input dependency. */
    double dep2Prob = 0.4;

    /** Phase length in instructions before switching to the next. */
    std::size_t lengthInsts = 50000;
};

/** A complete synthetic benchmark description. */
struct BenchmarkProfile
{
    /** SPEC benchmark name (e.g. "gzip"). */
    std::string name;

    /** True for SPEC FP benchmarks. */
    bool floatingPoint = false;

    /** Static code footprint in bytes (drives L1I behaviour). */
    std::size_t codeBytes = 32 * 1024;

    /** Hot data working set in bytes (L1D resident). */
    std::size_t hotBytes = 32 * 1024;

    /** Warm data working set in bytes (L2 resident). */
    std::size_t warmBytes = 512 * 1024;

    /** Phases cycled through in order. */
    std::vector<WorkloadPhase> phases;

    /** Deterministic per-benchmark seed component. */
    std::uint64_t seed = 1;
};

/** All 26 SPEC CPU2000 profiles (12 integer then 14 floating point). */
const std::vector<BenchmarkProfile> &spec2000Profiles();

/** The SPEC integer subset. */
std::vector<BenchmarkProfile> spec2000Int();

/** The SPEC floating-point subset. */
std::vector<BenchmarkProfile> spec2000Fp();

/** Look up a profile by name; fatal on unknown names. */
const BenchmarkProfile &profileByName(const std::string &name);

/**
 * Look up a profile by name without the fatal exit: nullptr on unknown
 * names. The didt_serve daemon uses this so a bad benchmark in a
 * request becomes a per-request error response, never a process exit.
 */
const BenchmarkProfile *findProfileByName(const std::string &name);

} // namespace didt

#endif // DIDT_WORKLOAD_PROFILE_HH
