#include "workload/virus.hh"

#include <algorithm>

#include "util/logging.hh"

namespace didt
{

DiDtVirus::DiDtVirus(std::uint32_t burst_ops, std::uint32_t stall_divs,
                     std::uint64_t max_instructions)
    : burstOps_(burst_ops),
      stallDivs_(stall_divs),
      maxInstructions_(max_instructions)
{
    if (burstOps_ == 0 || stallDivs_ == 0)
        didt_fatal("virus burst/stall lengths must be positive");
}

DiDtVirus
DiDtVirus::tunedFor(double clock_hz, double resonant_hz,
                    std::uint32_t issue_width, std::uint32_t div_latency,
                    std::uint64_t max_instructions)
{
    if (clock_hz <= 0.0 || resonant_hz <= 0.0)
        didt_fatal("virus tuning requires positive frequencies");
    const double period_cycles = clock_hz / resonant_hz;
    // Spend half the period stalled (divide chain), half bursting.
    const auto stall_divs = static_cast<std::uint32_t>(std::max(
        1.0, period_cycles / 2.0 / static_cast<double>(div_latency)));
    const auto burst_ops = static_cast<std::uint32_t>(std::max(
        1.0, period_cycles / 2.0 * static_cast<double>(issue_width)));
    return DiDtVirus(burst_ops, stall_divs, max_instructions);
}

bool
DiDtVirus::next(Instruction &out)
{
    if (maxInstructions_ != 0 && produced_ >= maxInstructions_)
        return false;

    out = Instruction{};
    out.pc = pc_;
    pc_ += 4;
    // Keep the loop body inside a tiny, always-L1-resident region.
    if (pc_ >= 0x00500000ULL + 4096)
        pc_ = 0x00500000ULL;

    if (inStall_) {
        // Serialized divides: each depends on the previous instruction.
        out.op = OpClass::IntDiv;
        out.dep1 = 1;
        if (++phasePos_ >= stallDivs_) {
            phasePos_ = 0;
            inStall_ = false;
        }
    } else {
        // Independent wide work cycling over every unit class to
        // maximize switching activity.
        switch (phasePos_ % 8) {
          case 0: case 3:
            out.op = OpClass::FpMult;
            break;
          case 1: case 4: case 6:
            out.op = OpClass::FpAlu;
            break;
          case 2:
            out.op = OpClass::Load;
            out.address = 0x10000000ULL + (phasePos_ % 512) * 64;
            break;
          case 5:
            out.op = OpClass::Store;
            out.address = 0x10000000ULL + (phasePos_ % 512) * 64;
            break;
          default:
            out.op = OpClass::IntAlu;
            break;
        }
        // Every burst op depends on the final divide of the preceding
        // stall, so the whole burst releases at once when the divide
        // completes — the steepest dI/dt edge the pipeline can make.
        out.dep1 = phasePos_ + 1;
        if (++phasePos_ >= burstOps_) {
            phasePos_ = 0;
            inStall_ = true;
        }
    }

    ++produced_;
    return true;
}

} // namespace didt
