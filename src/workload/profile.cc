#include "workload/profile.hh"

#include "util/logging.hh"

namespace didt
{

namespace
{

/** Smooth, L1-resident compute phase (high IPC, Gaussian current). */
WorkloadPhase
computePhase(bool fp, std::size_t length = 50000)
{
    WorkloadPhase p;
    p.loadFrac = fp ? 0.28 : 0.24;
    p.storeFrac = fp ? 0.10 : 0.10;
    p.branchFrac = fp ? 0.06 : 0.16;
    p.fpFrac = fp ? 0.85 : 0.0;
    p.multFrac = fp ? 0.25 : 0.06;
    p.divFrac = fp ? 0.01 : 0.003;
    p.hotProb = 0.945;
    p.warmProb = 0.053;
    p.chaseProb = 0.0;
    p.predictableBranchFrac = fp ? 0.96 : 0.90;
    p.depGeomP = 0.16;
    p.dep2Prob = 0.30;
    p.lengthInsts = length;
    return p;
}

/**
 * L2-resident pointer-chasing phase: dependent loads that miss L1 and
 * hit L2 produce current oscillation near the ~19-cycle L2 round trip,
 * squarely in the supply network's resonant band. The dI/dt stressor.
 */
WorkloadPhase
l2OscillationPhase(bool fp, std::size_t length = 4000)
{
    WorkloadPhase p = computePhase(fp, length);
    p.loadFrac = 0.03;      // one pivot load per ~33 instructions
    p.storeFrac = 0.10;
    p.branchFrac = 0.04;
    p.fpFrac = fp ? 0.45 : 0.0;
    p.multFrac = 0.10;
    p.divFrac = 0.0;
    p.hotProb = 0.05;
    p.warmProb = 0.93;
    p.chaseProb = 1.0;      // loads chain through L2 (~21-cycle period)
    p.gateOnLoadProb = 1.0; // work releases in bursts behind each load
    return p;
}

/**
 * Main-memory-bound phase: serialized 250-cycle misses leave the core
 * idle for long stretches punctuated by bursts — the spiky,
 * non-Gaussian profile of mcf/art/swim/lucas.
 */
WorkloadPhase
memBoundPhase(bool fp, double chase, std::size_t length = 30000)
{
    WorkloadPhase p = computePhase(fp, length);
    p.loadFrac = 0.35;
    p.storeFrac = 0.08;
    p.hotProb = 0.55;
    p.warmProb = 0.29;
    p.chaseProb = chase;
    p.depGeomP = 0.40;
    return p;
}

/** Moderate phase between compute- and memory-bound. */
WorkloadPhase
moderatePhase(bool fp, double hot, double warm, std::size_t length = 40000)
{
    WorkloadPhase p = computePhase(fp, length);
    p.hotProb = hot;
    p.warmProb = warm + (1.0 - hot - warm) - 0.004; // tiny cold residue
    p.chaseProb = 0.10;
    return p;
}

BenchmarkProfile
make(const std::string &name, bool fp, std::size_t code_kb,
     std::vector<WorkloadPhase> phases, std::uint64_t seed)
{
    BenchmarkProfile b;
    b.name = name;
    b.floatingPoint = fp;
    b.codeBytes = code_kb * 1024;
    b.phases = std::move(phases);
    b.seed = seed;
    return b;
}

std::vector<BenchmarkProfile>
buildProfiles()
{
    std::vector<BenchmarkProfile> all;
    std::uint64_t s = 1000;

    // ---- SPEC CINT2000 -------------------------------------------------
    // gzip: compression loops, L1-resident, smooth and Gaussian.
    all.push_back(make("gzip", false, 48,
                       {computePhase(false, 60000),
                        moderatePhase(false, 0.86, 0.13, 20000)},
                       ++s));
    // vpr: place & route; moderate memory, low current variance.
    all.push_back(make("vpr", false, 64,
                       {[] {
                           WorkloadPhase p = moderatePhase(false, 0.93,
                                                           0.06, 80000);
                           p.branchFrac = 0.11;
                           p.predictableBranchFrac = 0.97;
                           p.chaseProb = 0.0;
                           p.depGeomP = 0.22;
                           return p;
                       }()},
                       ++s));
    // gcc: big code footprint, bursty alternation of compute and
    // L2-resident pointer chasing -> strong mid-frequency dI/dt.
    all.push_back(make("gcc", false, 128,
                       {computePhase(false, 1200),
                        l2OscillationPhase(false, 900)},
                       ++s));
    // mcf: the classic pointer-chasing, memory-bound benchmark.
    all.push_back(make("mcf", false, 32,
                       {[] {
                           WorkloadPhase p = memBoundPhase(false, 0.8,
                                                           60000);
                           p.depFixed = 6;
                           p.chaseProb = 0.8;
                           return p;
                       }()},
                       ++s));
    // crafty: chess search, high ILP, L1-resident.
    all.push_back(make("crafty", false, 96,
                       {computePhase(false, 90000)}, ++s));
    // parser: moderate memory with less predictable branches.
    all.push_back(make("parser", false, 64,
                       {[] {
                           WorkloadPhase p = moderatePhase(false, 0.80, 0.18,
                                                           60000);
                           p.predictableBranchFrac = 0.78;
                           return p;
                       }()},
                       ++s));
    // eon: C++ ray tracer, compute-bound and smooth.
    all.push_back(make("eon", false, 80,
                       {computePhase(false, 90000)}, ++s));
    // perlbmk: interpreter with branchy, larger code.
    all.push_back(make("perlbmk", false, 96,
                       {[] {
                           WorkloadPhase p = computePhase(false, 50000);
                           p.branchFrac = 0.20;
                           p.predictableBranchFrac = 0.85;
                           return p;
                       }()},
                       ++s));
    // gap: group theory; steady moderate behaviour, low variance.
    all.push_back(make("gap", false, 64,
                       {[] {
                           WorkloadPhase p = moderatePhase(false, 0.92,
                                                           0.07, 80000);
                           p.branchFrac = 0.11;
                           p.predictableBranchFrac = 0.97;
                           p.chaseProb = 0.0;
                           p.depGeomP = 0.22;
                           return p;
                       }()},
                       ++s));
    // vortex: OO database, big code, mostly L2-resident data.
    all.push_back(make("vortex", false, 128,
                       {moderatePhase(false, 0.84, 0.15, 70000)}, ++s));
    // bzip2: compression with larger working set than gzip.
    all.push_back(make("bzip2", false, 48,
                       {moderatePhase(false, 0.78, 0.21, 50000),
                        computePhase(false, 30000)},
                       ++s));
    // twolf: placement; L2-resident working set, branchy.
    all.push_back(make("twolf", false, 64,
                       {[] {
                           WorkloadPhase p = moderatePhase(false, 0.74, 0.25,
                                                           70000);
                           p.predictableBranchFrac = 0.80;
                           return p;
                       }()},
                       ++s));

    // ---- SPEC CFP2000 --------------------------------------------------
    // wupwise: quantum chromodynamics; smooth FP compute.
    all.push_back(make("wupwise", true, 48,
                       {computePhase(true, 90000)}, ++s));
    // swim: shallow-water stencils streaming through memory.
    all.push_back(make("swim", true, 32,
                       {[] {
                           WorkloadPhase p = memBoundPhase(true, 0.05,
                                                           50000);
                           p.depGeomP = 0.20; // independent misses, MLP
                           return p;
                       }()},
                       ++s));
    // mgrid: multigrid stencils; alternating compute and L2-bound
    // sweeps at short period -> one of the paper's dI/dt stressors.
    all.push_back(make("mgrid", true, 32,
                       {computePhase(true, 1000),
                        l2OscillationPhase(true, 1100)},
                       ++s));
    // applu: PDE solver; like mgrid with longer, milder phases.
    all.push_back(make("applu", true, 48,
                       {computePhase(true, 12000),
                        l2OscillationPhase(true, 5000)},
                       ++s));
    // mesa: software rasterizer; L1-resident and smooth.
    all.push_back(make("mesa", true, 96,
                       {computePhase(true, 90000)}, ++s));
    // galgel: fluid dynamics; strong short-period phase alternation.
    all.push_back(make("galgel", true, 48,
                       {computePhase(true, 900),
                        l2OscillationPhase(true, 1000)},
                       ++s));
    // art: neural-net image recognition; streaming, memory-bound.
    all.push_back(make("art", true, 32,
                       {memBoundPhase(true, 0.45, 60000)}, ++s));
    // equake: sparse solver; serialized misses, low overall variance.
    all.push_back(make("equake", true, 48,
                       {[] {
                           WorkloadPhase p = memBoundPhase(true, 0.85,
                                                           70000);
                           p.depFixed = 6;
                           p.chaseProb = 0.85;
                           return p;
                       }()},
                       ++s));
    // facerec: image processing; moderate L2 traffic.
    all.push_back(make("facerec", true, 64,
                       {moderatePhase(true, 0.80, 0.18, 60000)}, ++s));
    // ammp: molecular dynamics; moderate memory-bound.
    all.push_back(make("ammp", true, 64,
                       {memBoundPhase(true, 0.5, 50000)}, ++s));
    // lucas: FFT-based primality; strided streaming misses.
    all.push_back(make("lucas", true, 32,
                       {[] {
                           WorkloadPhase p = memBoundPhase(true, 0.15,
                                                           60000);
                           p.depGeomP = 0.25;
                           return p;
                       }()},
                       ++s));
    // fma3d: crash simulation; moderate compute with L2 episodes.
    all.push_back(make("fma3d", true, 128,
                       {computePhase(true, 20000),
                        moderatePhase(true, 0.75, 0.23, 10000)},
                       ++s));
    // sixtrack: accelerator tracking; tight FP loops, very smooth.
    all.push_back(make("sixtrack", true, 48,
                       {computePhase(true, 100000)}, ++s));
    // apsi: meteorology; short-period compute/L2 alternation.
    all.push_back(make("apsi", true, 64,
                       {computePhase(true, 1300),
                        l2OscillationPhase(true, 1200)},
                       ++s));
    return all;
}

} // namespace

const std::vector<BenchmarkProfile> &
spec2000Profiles()
{
    static const std::vector<BenchmarkProfile> profiles = buildProfiles();
    return profiles;
}

std::vector<BenchmarkProfile>
spec2000Int()
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : spec2000Profiles())
        if (!p.floatingPoint)
            out.push_back(p);
    return out;
}

std::vector<BenchmarkProfile>
spec2000Fp()
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : spec2000Profiles())
        if (p.floatingPoint)
            out.push_back(p);
    return out;
}

const BenchmarkProfile *
findProfileByName(const std::string &name)
{
    for (const auto &p : spec2000Profiles())
        if (p.name == name)
            return &p;
    return nullptr;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    if (const BenchmarkProfile *p = findProfileByName(name))
        return *p;
    didt_fatal("unknown benchmark '", name, "'");
}

} // namespace didt
