/**
 * @file
 * Multi-program workload mixes for chip-level simulation.
 *
 * A mix co-schedules the synthetic SPEC profiles onto the cores of a
 * Chip: core i runs the mix's benchmark list cycled at position i,
 * with its stream seed derived deterministically from the single
 * campaign seed (see deriveCoreSeed). Mixes whose cores run the same
 * benchmark come in two phase flavours — `inphase-<bench>` clones one
 * stream onto every core (the resonance worst case: all cores stall
 * and ramp together), while `staggered-<bench>` decorrelates the
 * per-core seeds so activity bursts cancel in the aggregate.
 */

#ifndef DIDT_WORKLOAD_MIX_HH
#define DIDT_WORKLOAD_MIX_HH

#include <optional>
#include <string>
#include <vector>

#include "workload/profile.hh"

namespace didt
{

/** A named assignment of benchmarks to chip cores. */
struct WorkloadMix
{
    /** Mix name as used by `didt_campaign --mix`. */
    std::string name;

    /** Benchmarks cycled over cores (core i runs entry i mod size). */
    std::vector<std::string> benchmarks;

    /**
     * When true (the default), each core's stream seed is derived via
     * deriveCoreSeed, so cores run independent streams. When false,
     * every core repeats the campaign seed: cores running the same
     * benchmark execute identical streams in lockstep — the in-phase
     * resonance stressor.
     */
    bool staggerSeeds = true;
};

/** The built-in named mixes (all names resolvable by findMixByName). */
const std::vector<WorkloadMix> &standardMixes();

/**
 * Resolve a mix name: a built-in from standardMixes(), or the dynamic
 * forms `inphase-<bench>` / `staggered-<bench>` which run benchmark
 * <bench> on every core. Returns nullopt for unknown names or unknown
 * benchmarks (serve-safe: a bad request must not exit the daemon).
 */
std::optional<WorkloadMix> findMixByName(const std::string &name);

/** Resolve a mix name; fatal on unknown names (CLI entry point). */
WorkloadMix mixByName(const std::string &name);

/** The profile core @p core_index runs under @p mix. */
const BenchmarkProfile &mixProfileForCore(const WorkloadMix &mix,
                                          std::size_t core_index);

/**
 * The stream seed core @p core_index uses under @p mix: the campaign
 * seed itself when the mix is in phase, a deriveCoreSeed derivation
 * otherwise. Core 0 always keeps the campaign seed.
 */
std::uint64_t mixCoreSeed(const WorkloadMix &mix,
                          std::uint64_t campaign_seed,
                          std::size_t core_index);

} // namespace didt

#endif // DIDT_WORKLOAD_MIX_HH
