#include "workload/generator.hh"

#include <algorithm>
#include <functional>

#include "util/logging.hh"

namespace didt
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

std::uint64_t
deriveCoreSeed(std::uint64_t campaign_seed, std::size_t core_index)
{
    if (core_index == 0)
        return campaign_seed;
    return splitmix64(campaign_seed +
                      0x9e3779b97f4a7c15ULL *
                          static_cast<std::uint64_t>(core_index));
}

SyntheticWorkload::SyntheticWorkload(const BenchmarkProfile &profile,
                                     std::uint64_t max_instructions,
                                     std::uint64_t seed)
    : profile_(profile),
      maxInstructions_(max_instructions),
      rng_(splitmix64(profile.seed * 0x9e3779b97f4a7c15ULL + seed + 1)),
      pc_(kCodeBase)
{
    if (profile_.phases.empty())
        didt_fatal("profile '", profile_.name, "' has no phases");
    if (profile_.codeBytes < 4096)
        didt_fatal("profile '", profile_.name, "' code footprint too small");
    phaseRemaining_ = profile_.phases[0].lengthInsts;
}

const WorkloadPhase &
SyntheticWorkload::currentPhase() const
{
    return profile_.phases[phaseIndex_];
}

void
SyntheticWorkload::advancePhase()
{
    if (phaseRemaining_ > 0) {
        --phaseRemaining_;
        return;
    }
    phaseIndex_ = (phaseIndex_ + 1) % profile_.phases.size();
    phaseRemaining_ = profile_.phases[phaseIndex_].lengthInsts;
}

bool
SyntheticWorkload::isBranchSite(std::uint64_t pc,
                                const WorkloadPhase &phase) const
{
    // Branch sites are a pure function of the PC so static branches
    // are stable and the predictor/BTB can train on them.
    const std::uint64_t h = splitmix64(pc ^ 0xb5a5b5a5deadbeefULL);
    return (h % 10000) <
           static_cast<std::uint64_t>(phase.branchFrac * 10000.0);
}

OpClass
SyntheticWorkload::drawOpClass(const WorkloadPhase &phase)
{
    // Branches are handled by site selection; draw among the rest with
    // renormalized probabilities.
    const double rest = 1.0 - phase.branchFrac;
    const double u = rng_.uniform() * (rest > 0.0 ? rest : 1.0);
    double acc = phase.loadFrac;
    if (u < acc)
        return OpClass::Load;
    acc += phase.storeFrac;
    if (u < acc)
        return OpClass::Store;

    // Arithmetic op: split int/fp, then alu/mult/div.
    const bool fp = rng_.bernoulli(phase.fpFrac);
    const double v = rng_.uniform();
    if (v < phase.divFrac)
        return fp ? OpClass::FpDiv : OpClass::IntDiv;
    if (v < phase.divFrac + phase.multFrac)
        return fp ? OpClass::FpMult : OpClass::IntMult;
    return fp ? OpClass::FpAlu : OpClass::IntAlu;
}

std::uint64_t
SyntheticWorkload::drawAddress(const WorkloadPhase &phase)
{
    const double u = rng_.uniform();
    if (u < phase.hotProb) {
        const std::uint64_t offset =
            rng_.uniformInt(profile_.hotBytes / 8) * 8;
        return kHotBase + offset;
    }
    if (u < phase.hotProb + phase.warmProb) {
        // Warm: stride through an L2-resident set so it stays resident
        // (L1 misses, L2 hits after the first pass), with occasional
        // random jumps within the set.
        if (rng_.bernoulli(0.05))
            warmPtr_ = rng_.uniformInt(profile_.warmBytes / 64) * 64;
        const std::uint64_t addr = kWarmBase + warmPtr_;
        warmPtr_ = (warmPtr_ + 64) % profile_.warmBytes;
        return addr;
    }
    // Cold: stride through a footprint far larger than L2 so each
    // line is a compulsory miss; occasional random jumps keep the
    // stream from looking like a pure prefetchable sequence.
    if (rng_.bernoulli(0.02))
        coldPtr_ = rng_.uniformInt(kColdBytes / 64) * 64;
    const std::uint64_t addr = kColdBase + coldPtr_;
    coldPtr_ = (coldPtr_ + 64) % kColdBytes;
    return addr;
}

void
SyntheticWorkload::fillDeps(const WorkloadPhase &phase, Instruction &inst)
{
    if (phase.depFixed != 0) {
        inst.dep1 = phase.depFixed;
    } else {
        inst.dep1 = static_cast<std::uint32_t>(
            1 +
            std::min<std::uint64_t>(rng_.geometric(phase.depGeomP), 120));
        if (rng_.bernoulli(phase.dep2Prob)) {
            inst.dep2 = static_cast<std::uint32_t>(
                1 + std::min<std::uint64_t>(rng_.geometric(phase.depGeomP),
                                            120));
        }
    }

    // Pointer chasing: this load's address comes from the previous
    // load's result, serializing the memory accesses.
    if (inst.op == OpClass::Load && haveLastLoad_ &&
        rng_.bernoulli(phase.chaseProb)) {
        inst.dep1 = std::max<std::uint32_t>(1, sinceLastLoad_);
    }

    // Load-gated work: this instruction consumes the last load's
    // result, so bursts of it release only when the load returns.
    if (inst.op != OpClass::Load && haveLastLoad_ &&
        rng_.bernoulli(phase.gateOnLoadProb)) {
        inst.dep1 = std::max<std::uint32_t>(1, sinceLastLoad_);
        inst.dep2 = 0;
    }
}

void
SyntheticWorkload::makeBranch(const WorkloadPhase &phase, Instruction &inst)
{
    // Branch behaviour is a deterministic function of the PC so the
    // predictor sees stable per-static-branch statistics.
    const std::uint64_t h = splitmix64(inst.pc);
    const bool predictable =
        (h % 1000) < static_cast<std::uint64_t>(
                         phase.predictableBranchFrac * 1000.0);
    const double taken_bias =
        predictable ? ((h >> 10) % 2 ? 0.96 : 0.04) : 0.58;
    inst.taken = rng_.bernoulli(taken_bias);

    // Stable per-PC backward target: loops of 64-2111 instructions,
    // wrapped into the code footprint. Backward jumps give the walk
    // the loop structure real code has.
    const std::uint64_t span = profile_.codeBytes;
    const std::uint64_t dist_bytes = (64 + splitmix64(h + 1) % 2048) * 4;
    std::uint64_t off = inst.pc - kCodeBase;
    off = (off + span - dist_bytes % span) % span;
    inst.target = kCodeBase + off;

    // Occasional call/return pairs exercise the RAS. The generator
    // keeps its own return stack so returns carry real targets.
    if ((h % 97) == 0 && callStack_.size() < 24) {
        inst.isCall = true;
        if (inst.taken)
            callStack_.push_back(inst.pc + 4);
    } else if ((h % 89) == 0 && !callStack_.empty()) {
        inst.isReturn = true;
        inst.taken = true;
        inst.target = callStack_.back();
        callStack_.pop_back();
    }
}

std::uint64_t
SyntheticWorkload::skipInstructions(std::uint64_t count)
{
    if (maxInstructions_ != 0)
        count = std::min(count, maxInstructions_ - produced_);

    // Walk the phase schedule the way per-instruction advancePhase()
    // would: an instruction arriving at phaseRemaining_ == 0 rolls
    // over to the next phase's full budget.
    std::uint64_t left = count;
    while (left > 0) {
        if (phaseRemaining_ >= left) {
            phaseRemaining_ -= left;
            left = 0;
        } else {
            left -= phaseRemaining_ + 1;
            phaseIndex_ = (phaseIndex_ + 1) % profile_.phases.size();
            phaseRemaining_ = profile_.phases[phaseIndex_].lengthInsts;
        }
    }

    // Reposition the PC as a straight-line walk; the next branch
    // re-establishes the loop structure. The RNG state is untouched,
    // which is what keeps this O(1) per phase.
    pc_ = kCodeBase + (pc_ - kCodeBase + 4 * count) % profile_.codeBytes;
    produced_ += count;
    return count;
}

std::vector<std::uint64_t>
SyntheticWorkload::dataFootprint() const
{
    std::vector<std::uint64_t> lines;
    lines.reserve(profile_.hotBytes / 64 + profile_.warmBytes / 64);
    // Warm first so a second pass over hot leaves hot lines youngest.
    for (std::uint64_t off = 0; off < profile_.warmBytes; off += 64)
        lines.push_back(kWarmBase + off);
    for (std::uint64_t off = 0; off < profile_.hotBytes; off += 64)
        lines.push_back(kHotBase + off);
    return lines;
}

std::vector<std::uint64_t>
SyntheticWorkload::codeFootprint() const
{
    std::vector<std::uint64_t> lines;
    lines.reserve(profile_.codeBytes / 64);
    for (std::uint64_t off = 0; off < profile_.codeBytes; off += 64)
        lines.push_back(kCodeBase + off);
    return lines;
}

bool
SyntheticWorkload::next(Instruction &out)
{
    if (maxInstructions_ != 0 && produced_ >= maxInstructions_)
        return false;

    const WorkloadPhase &phase = currentPhase();

    out = Instruction{};
    out.pc = pc_;
    out.op = isBranchSite(pc_, phase) ? OpClass::Branch
                                      : drawOpClass(phase);

    if (isMemOp(out.op))
        out.address = drawAddress(phase);

    fillDeps(phase, out);

    if (out.op == OpClass::Branch) {
        makeBranch(phase, out);
        pc_ = out.taken ? out.target : pc_ + 4;
    } else {
        pc_ += 4;
    }
    // Keep the PC inside the synthetic code footprint.
    if (pc_ >= kCodeBase + profile_.codeBytes)
        pc_ = kCodeBase + (pc_ - kCodeBase) % profile_.codeBytes;

    if (out.op == OpClass::Load) {
        sinceLastLoad_ = 1;
        haveLastLoad_ = true;
    } else if (haveLastLoad_ && sinceLastLoad_ < 200) {
        ++sinceLastLoad_;
    }

    ++produced_;
    advancePhase();
    return true;
}

} // namespace didt
