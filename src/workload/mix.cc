#include "workload/mix.hh"

#include "util/logging.hh"
#include "workload/generator.hh"

namespace didt
{

namespace
{

constexpr const char kInPhasePrefix[] = "inphase-";
constexpr const char kStaggeredPrefix[] = "staggered-";

bool
hasPrefix(const std::string &name, const char *prefix)
{
    return name.rfind(prefix, 0) == 0;
}

} // namespace

const std::vector<WorkloadMix> &
standardMixes()
{
    static const std::vector<WorkloadMix> mixes = {
        // Four-program flavours of the SPEC subsets: compute-bound
        // integer, floating point, memory stressors, and a balanced
        // mix pairing a dI/dt stressor (mcf's gated L2-hit bursts)
        // with smooth issuers.
        {"int4", {"gzip", "gcc", "crafty", "vortex"}, true},
        {"fp4", {"swim", "applu", "art", "equake"}, true},
        {"mem4", {"mcf", "art", "swim", "lucas"}, true},
        {"mixed4", {"gzip", "mcf", "swim", "crafty"}, true},
    };
    return mixes;
}

std::optional<WorkloadMix>
findMixByName(const std::string &name)
{
    for (const WorkloadMix &mix : standardMixes())
        if (mix.name == name)
            return mix;

    // Dynamic single-benchmark mixes: every core runs <bench>, either
    // phase-locked (identical streams) or seed-staggered.
    for (const char *prefix : {kInPhasePrefix, kStaggeredPrefix}) {
        if (!hasPrefix(name, prefix))
            continue;
        const std::string bench = name.substr(std::string(prefix).size());
        if (findProfileByName(bench) == nullptr)
            return std::nullopt;
        WorkloadMix mix;
        mix.name = name;
        mix.benchmarks = {bench};
        mix.staggerSeeds = prefix == kStaggeredPrefix;
        return mix;
    }
    return std::nullopt;
}

WorkloadMix
mixByName(const std::string &name)
{
    std::optional<WorkloadMix> mix = findMixByName(name);
    if (!mix)
        didt_fatal("unknown workload mix '", name,
                   "' (try int4, fp4, mem4, mixed4, inphase-<bench>, "
                   "staggered-<bench>)");
    return *std::move(mix);
}

const BenchmarkProfile &
mixProfileForCore(const WorkloadMix &mix, std::size_t core_index)
{
    if (mix.benchmarks.empty())
        didt_fatal("mix '", mix.name, "' has no benchmarks");
    return profileByName(
        mix.benchmarks[core_index % mix.benchmarks.size()]);
}

std::uint64_t
mixCoreSeed(const WorkloadMix &mix, std::uint64_t campaign_seed,
            std::size_t core_index)
{
    if (!mix.staggerSeeds)
        return campaign_seed;
    return deriveCoreSeed(campaign_seed, core_index);
}

} // namespace didt
