/**
 * @file
 * dI/dt stressmark ("virus") workload.
 *
 * Commercial designers benchmark supply adequacy with custom crafted
 * microbenchmarks (paper Section 3.1, citing Bannon): loops that swing
 * the machine between maximum activity and a deep stall at the supply
 * network's resonant period, building the largest achievable voltage
 * oscillation. This source emits exactly that pattern: a burst of
 * independent wide-issue work followed by a serializing divide chain,
 * with the burst/stall lengths chosen to lock onto the resonant
 * frequency. The resulting *processor-filtered* current trace defines
 * the worst-case execution sequence used to calibrate 100% target
 * impedance.
 */

#ifndef DIDT_WORKLOAD_VIRUS_HH
#define DIDT_WORKLOAD_VIRUS_HH

#include <cstdint>

#include "sim/instruction.hh"

namespace didt
{

/** Resonance-locked burst/stall instruction stream. */
class DiDtVirus : public InstructionSource
{
  public:
    /**
     * @param burst_ops independent (far-dependency) mixed ALU/FP/load
     *        ops per burst; at 4-wide issue a burst of B ops runs for
     *        about B/4 cycles
     * @param stall_divs serialized dependent integer divides per
     *        stall; each occupies the divider ~20 cycles
     * @param max_instructions stream length (0 = unbounded)
     */
    DiDtVirus(std::uint32_t burst_ops, std::uint32_t stall_divs,
              std::uint64_t max_instructions = 0);

    /**
     * Convenience: choose burst/stall lengths that lock onto
     * @p resonant_hz for a machine at @p clock_hz with the given
     * issue width and divide latency.
     */
    static DiDtVirus tunedFor(double clock_hz, double resonant_hz,
                              std::uint32_t issue_width,
                              std::uint32_t div_latency,
                              std::uint64_t max_instructions = 0);

    bool next(Instruction &out) override;

  private:
    std::uint32_t burstOps_;
    std::uint32_t stallDivs_;
    std::uint64_t maxInstructions_;
    std::uint64_t produced_ = 0;
    std::uint32_t phasePos_ = 0;
    bool inStall_ = false;
    std::uint64_t pc_ = 0x00500000ULL;
};

} // namespace didt

#endif // DIDT_WORKLOAD_VIRUS_HH
