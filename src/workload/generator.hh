/**
 * @file
 * Synthetic instruction-stream generator.
 *
 * Turns a BenchmarkProfile into a deterministic dynamic instruction
 * stream implementing InstructionSource. Program counters walk a
 * synthetic code footprint with per-PC-stable branch behaviour (so the
 * real predictor and BTB learn exactly as they would on a real trace);
 * data addresses are drawn from hot/warm/cold working-set regions (so
 * the real cache hierarchy produces the profile's miss behaviour);
 * register dependencies are drawn from a geometric distance
 * distribution with optional load-to-load chasing.
 */

#ifndef DIDT_WORKLOAD_GENERATOR_HH
#define DIDT_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "sim/instruction.hh"
#include "util/rng.hh"
#include "workload/profile.hh"

namespace didt
{

/**
 * splitmix64 finalizer: a stable, well-mixed 64-bit hash. The seed of
 * every synthetic stream passes through this, and it is the derivation
 * step for per-core seeds — part of the reproducibility contract, so
 * its bits must never change.
 */
std::uint64_t splitmix64(std::uint64_t x);

/**
 * Derive core @p core_index's workload seed from one campaign seed.
 *
 * Core 0 gets the campaign seed unchanged (a 1-core chip replays the
 * uniprocessor stream bit-for-bit); higher cores get splitmix-style
 * decorrelated seeds, so N streams from one campaign seed are mutually
 * independent yet individually reproducible.
 */
std::uint64_t deriveCoreSeed(std::uint64_t campaign_seed,
                             std::size_t core_index);

/** Deterministic synthetic workload for one benchmark profile. */
class SyntheticWorkload : public InstructionSource
{
  public:
    /**
     * @param profile the benchmark description
     * @param max_instructions stream length (0 = unbounded)
     * @param seed extra seed mixed with the profile's own
     */
    SyntheticWorkload(const BenchmarkProfile &profile,
                      std::uint64_t max_instructions,
                      std::uint64_t seed = 0);

    bool next(Instruction &out) override;

    /**
     * Positional fast-forward: advances the instruction count, phase
     * schedule, and program counter arithmetically without drawing
     * from the generator. The stream is stochastic and stationary
     * within a phase, so the continuation after a skip is
     * statistically the same stream that full generation would have
     * reached — at O(phases crossed) cost instead of O(count).
     */
    std::uint64_t skipInstructions(std::uint64_t count) override;

    /** Instructions produced so far. */
    std::uint64_t produced() const { return produced_; }

    /**
     * Cacheable footprint of this workload at line granularity: all
     * hot- and warm-region data addresses. Touching these before the
     * timed run models a SimPoint-style warm cache start.
     */
    std::vector<std::uint64_t> dataFootprint() const;

    /** Code footprint at line granularity (for the L1I / L2). */
    std::vector<std::uint64_t> codeFootprint() const;

    /** The profile driving this stream. */
    const BenchmarkProfile &profile() const { return profile_; }

  private:
    const WorkloadPhase &currentPhase() const;
    void advancePhase();
    bool isBranchSite(std::uint64_t pc, const WorkloadPhase &phase) const;
    OpClass drawOpClass(const WorkloadPhase &phase);
    std::uint64_t drawAddress(const WorkloadPhase &phase);
    void fillDeps(const WorkloadPhase &phase, Instruction &inst);
    void makeBranch(const WorkloadPhase &phase, Instruction &inst);

    BenchmarkProfile profile_;
    std::uint64_t maxInstructions_;
    Rng rng_;

    std::uint64_t produced_ = 0;
    std::size_t phaseIndex_ = 0;
    std::uint64_t phaseRemaining_ = 0;

    std::uint64_t pc_;
    std::uint64_t coldPtr_ = 0;
    std::uint64_t warmPtr_ = 0;
    std::uint32_t sinceLastLoad_ = 0;
    bool haveLastLoad_ = false;
    std::vector<std::uint64_t> callStack_;

    static constexpr std::uint64_t kCodeBase = 0x00400000ULL;
    static constexpr std::uint64_t kHotBase = 0x10000000ULL;
    static constexpr std::uint64_t kWarmBase = 0x20000000ULL;
    static constexpr std::uint64_t kColdBase = 0x30000000ULL;
    static constexpr std::uint64_t kColdBytes = 256ULL * 1024 * 1024;
};

} // namespace didt

#endif // DIDT_WORKLOAD_GENERATOR_HH
