/**
 * @file
 * Chip multiprocessor: N cores in lockstep behind a shared L2.
 *
 * The CMP generalization of the paper's machine (ROADMAP north-star):
 * each Core keeps its private pipeline, L1s and predictor, while the
 * unified L2 is shared through a bank-conflict arbiter that charges
 * same-cycle cross-core claims. The chip steps all cores in lockstep
 * and sums their per-cycle currents — optionally scaled per core —
 * into the single chip-level stimulus the supply network consumes.
 * Cores ramping in phase therefore excite the package resonance
 * constructively; staggered activity partially cancels, which is the
 * aggregation physics the chip-level controllers exploit.
 *
 * Invariant: a 1-core Chip is byte-identical to the Processor path.
 * The single core gets core id 0 (no address offset, historical noise
 * seed), can never conflict with itself in the arbiter, and the
 * default current scale for one core is exactly 1.0.
 */

#ifndef DIDT_SIM_CHIP_HH
#define DIDT_SIM_CHIP_HH

#include <memory>
#include <span>
#include <vector>

#include "sim/processor.hh"

namespace didt
{

/** Chip-level parameters on top of the per-core configuration. */
struct ChipConfig
{
    std::size_t cores = 1;        ///< hardware contexts on the chip
    std::size_t l2Banks = 8;      ///< shared-L2 banks (power of two)
    std::size_t l2BankPenalty = 4;///< cycles per same-cycle foreign claim

    /**
     * Per-core scale applied when summing currents into the chip
     * stimulus (models per-core supply impedance). Empty selects the
     * default 1/cores for every core, which keeps the aggregate in the
     * single-core-calibrated range — and is exactly 1.0 for one core.
     */
    std::vector<double> coreCurrentScales;

    ProcessorConfig core; ///< configuration shared by every core
};

/**
 * N lockstep cores sharing one unified L2 behind a bank arbiter.
 *
 * Construction wires core i to @p sources[i]; warm-up is per core via
 * core(i).warmup()/warmupFootprint() before the first step(). Each
 * step() advances every core one cycle (drained cores keep clocking —
 * an idle core still draws idle current and switching noise) and
 * refreshes the aggregate current.
 */
class Chip
{
  public:
    /**
     * @param config chip and per-core parameters
     * @param power_config power-model budget (shared by every core)
     * @param sources one instruction stream per core (must outlive
     *        this; sources.size() must equal config.cores)
     */
    Chip(const ChipConfig &config, const PowerModelConfig &power_config,
         std::span<InstructionSource *const> sources);

    /** Number of cores. */
    std::size_t coreCount() const { return cores_.size(); }

    /** Core @p index (valid for index < coreCount()). */
    Core &core(std::size_t index) { return *cores_[index]; }

    /** @copydoc core */
    const Core &core(std::size_t index) const { return *cores_[index]; }

    /**
     * Advance every core one cycle in core-id order.
     * @retval true at least one core did or may still do work
     * @retval false all sources exhausted and all pipelines drained
     */
    bool step();

    /** Chip-level current of the most recent cycle (scaled sum). */
    Amp lastAggregateCurrent() const { return lastAggregate_; }

    /** Core @p index current of the most recent cycle (unscaled). */
    Amp lastCoreCurrent(std::size_t index) const
    {
        return cores_[index]->lastCurrent();
    }

    /** Scale applied to core @p index in the aggregate. */
    double coreScale(std::size_t index) const { return scales_[index]; }

    /** The shared L2. */
    const Cache &l2() const { return l2_; }

    /** The shared-L2 bank arbiter. */
    const L2BankArbiter &arbiter() const { return arbiter_; }

    /** The chip configuration. */
    const ChipConfig &config() const { return config_; }

    /**
     * Run until @p max_cycles elapse or every core drains, appending
     * each cycle's unscaled per-core currents to @p per_core (resized
     * to coreCount()) and the scaled sum to @p aggregate.
     * @return number of cycles executed
     */
    Cycle collectTraces(std::vector<CurrentTrace> &per_core,
                        CurrentTrace &aggregate, Cycle max_cycles);

    /**
     * Sampled variant of collectTraces: the whole chip alternates
     * lockstep detailed windows with fast-forwarded segments (every
     * core skips together, so windows stay aligned across cores), and
     * both the per-core traces and the aggregate have their gaps
     * reconstructed from the bracketing windows (sim/sampling.hh). A
     * disabled @p sampling runs plain collectTraces byte-identically.
     * @return virtual cycles covered
     */
    Cycle collectTracesSampled(std::vector<CurrentTrace> &per_core,
                               CurrentTrace &aggregate, Cycle max_cycles,
                               const SamplingConfig &sampling);

    /** Clear shared-L2 and arbiter statistics (post-warm-up). */
    void clearSharedStats();

  private:
    ChipConfig config_;
    Cache l2_;
    L2BankArbiter arbiter_;
    std::vector<double> scales_;
    std::vector<std::unique_ptr<Core>> cores_; ///< Core is not movable
    Amp lastAggregate_ = 0.0;
};

} // namespace didt

#endif // DIDT_SIM_CHIP_HH
