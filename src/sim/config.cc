#include "sim/config.hh"

#include <ostream>

namespace didt
{

void
ProcessorConfig::print(std::ostream &os) const
{
    os << "Execution Core\n"
       << "  Clock Rate          " << clockHz / 1e9 << " GHz\n"
       << "  Instruction Window  " << ruuSize << "-RUU, " << lsqSize
       << "-LSQ\n"
       << "  Functional Units    " << intAluCount << " IntALU, "
       << intMultCount << " IntMult/IntDiv\n"
       << "                      " << fpAluCount << " FPALU, " << fpMultCount
       << " FPMult/FPDiv\n"
       << "                      " << memPortCount << " Memory Ports\n"
       << "Front End\n"
       << "  Fetch/Decode Width  " << fetchWidth << " inst, " << decodeWidth
       << " inst\n"
       << "  Branch Penalty      " << branchPenalty << " cycles\n"
       << "  Branch Predictor    Combined: " << chooserEntries / 1024
       << "K Bimod Chooser\n"
       << "                      " << bimodEntries / 1024 << "K Bimod w/ "
       << gshareEntries / 1024 << "K " << gshareHistoryBits
       << "-bit Gshare\n"
       << "  BTB                 " << btbEntries / 1024 << "K Entry, "
       << btbAssociativity << "-way\n"
       << "  RAS                 " << rasEntries << " Entry\n"
       << "Memory Hierarchy\n"
       << "  L1 I-Cache          " << l1i.sizeBytes / 1024 << "KB, "
       << l1i.associativity << "-way, " << l1i.latency << " cycle latency\n"
       << "  L1 D-Cache          " << l1d.sizeBytes / 1024 << "KB, "
       << l1d.associativity << "-way, " << l1d.latency << " cycle latency\n"
       << "  L2 I/D-Cache        " << l2.sizeBytes / (1024 * 1024) << "MB, "
       << l2.associativity << "-way, " << l2.latency << " cycle latency\n"
       << "  Main Memory         " << memoryLatency << " cycle latency\n";
}

} // namespace didt
