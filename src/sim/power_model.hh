/**
 * @file
 * Wattch-style activity-based power model (paper Section 3.2).
 *
 * Each microarchitectural structure has a peak power; per-cycle power
 * scales with that cycle's access counts under a selectable
 * conditional-clock-gating style (Wattch's cc0-cc3). Per-cycle current
 * is power divided by the supply voltage — with Vdd = 1.0 V one watt
 * corresponds to one ampere, as the paper notes.
 */

#ifndef DIDT_SIM_POWER_MODEL_HH
#define DIDT_SIM_POWER_MODEL_HH

#include <array>
#include <cstddef>
#include <iosfwd>

#include "sim/config.hh"
#include "util/types.hh"

namespace didt
{

/** Structures tracked by the power model. */
enum class PowerUnit : std::size_t
{
    Fetch,     ///< I-cache and fetch datapath
    Bpred,     ///< branch predictor tables and BTB
    Decode,    ///< decode and rename
    Window,    ///< RUU wakeup + selection logic
    RegFile,   ///< register file read/write ports
    IntAlu,    ///< integer ALUs
    IntMult,   ///< integer multiplier/divider
    FpAlu,     ///< floating-point adders
    FpMult,    ///< FP multiplier/divider
    Lsq,       ///< load/store queue
    DCache,    ///< L1 data cache
    L2,        ///< unified L2 cache
    Clock,     ///< global clock distribution
    NumUnits,
};

/** Number of tracked power units. */
constexpr std::size_t kNumPowerUnits =
    static_cast<std::size_t>(PowerUnit::NumUnits);

/** Wattch conditional clock-gating styles. */
enum class ClockGating
{
    None,        ///< cc0: every structure always burns peak power
    AllOrNothing,///< cc1: full peak when used at all, zero when idle
    Linear,      ///< cc2: power scales with port utilization, zero idle
    LinearIdle,  ///< cc3: linear scaling with a non-zero idle floor
};

/** Peak-power budget and gating parameters. */
struct PowerModelConfig
{
    /** Peak power per unit in watts (index by PowerUnit). */
    std::array<Watt, kNumPowerUnits> peak{
        5.0,  // Fetch
        2.5,  // Bpred
        6.0,  // Decode
        9.0,  // Window
        7.0,  // RegFile
        8.0,  // IntAlu (all units combined)
        3.0,  // IntMult
        8.0,  // FpAlu (all units combined)
        5.0,  // FpMult
        4.0,  // Lsq
        9.0,  // DCache
        14.0, // L2
        15.0, // Clock
    };

    /** Always-on leakage power in watts. */
    Watt leakage = 8.0;

    /** Idle floor fraction for the LinearIdle (cc3) style. */
    double idleFraction = 0.10;

    /** Fraction of clock power that cannot be gated. */
    double clockUngatedFraction = 0.30;

    /** Gating style (paper-era Wattch default is cc3). */
    ClockGating gating = ClockGating::LinearIdle;

    /**
     * Standard deviation (amperes) of the data-dependent switching
     * noise added to the per-cycle current. Activity counts alone
     * quantize the current to a few discrete levels; real current
     * varies continuously with operand values and toggled bit counts.
     */
    Amp currentNoiseSigma = 3.0;

    /**
     * Stages over which a cycle's dynamic power is spread (the paper:
     * "we updated Wattch to spread the power usage of pipelined
     * structures over multiple stages"). 1 charges everything in the
     * access cycle; 2-3 models deeply pipelined structures whose
     * switching extends over following cycles.
     */
    std::size_t spreadStages = 2;
};

/** Per-cycle activity counts reported by the pipeline. */
struct ActivitySample
{
    std::size_t fetched = 0;        ///< instructions fetched
    std::size_t bpredLookups = 0;   ///< predictor lookups
    std::size_t decoded = 0;        ///< instructions decoded/renamed
    std::size_t dispatched = 0;     ///< instructions entering the RUU
    std::size_t issuedIntAlu = 0;   ///< ops issued to integer ALUs
    std::size_t issuedIntMult = 0;  ///< ops issued to int mult/div
    std::size_t issuedFpAlu = 0;    ///< ops issued to FP ALUs
    std::size_t issuedFpMult = 0;   ///< ops issued to FP mult/div
    std::size_t regReads = 0;       ///< register file reads
    std::size_t regWrites = 0;      ///< register file writes
    std::size_t lsqOps = 0;         ///< LSQ insertions/searches
    std::size_t dcacheAccesses = 0; ///< L1D accesses
    std::size_t l2Accesses = 0;     ///< L2 accesses (from either L1)
    std::size_t committed = 0;      ///< instructions committed
    std::size_t windowOccupancy = 0;///< RUU entries valid this cycle
};

/** The activity-to-power mapping. */
class PowerModel
{
  public:
    /** Bind the budget to the machine geometry (port counts). */
    PowerModel(const PowerModelConfig &power, const ProcessorConfig &proc);

    /** Total power for one cycle's activity. */
    Watt cyclePower(const ActivitySample &activity) const;

    /** Per-unit power breakdown for one cycle (plus leakage). */
    std::array<Watt, kNumPowerUnits>
    unitPower(const ActivitySample &activity) const;

    /** Per-cycle current: cyclePower / Vdd. */
    Amp cycleCurrent(const ActivitySample &activity) const;

    /** Sum of all peaks plus leakage: the maximum possible draw. */
    Watt peakPower() const { return peakPower_; }

    /** Minimum possible draw (everything idle). */
    Watt idlePower() const { return idlePower_; }

    /** The configuration in use. */
    const PowerModelConfig &config() const { return config_; }

  private:
    PowerModelConfig config_;
    ProcessorConfig proc_;
    Volt vdd_;

    /**
     * Idle and peak draw depend only on the immutable configuration,
     * so they are computed once at construction: the simulator's hot
     * loop reads both every cycle (power spreading and the switching-
     * noise activity scale) and must not re-derive a full unitPower
     * breakdown each time.
     */
    Watt idlePower_ = 0.0;
    Watt peakPower_ = 0.0;

    /** Gated power of one unit given utilization in [0, 1]. */
    Watt gated(PowerUnit unit, double utilization) const;
};

/** Human-readable unit name. */
const char *powerUnitName(PowerUnit unit);

} // namespace didt

#endif // DIDT_SIM_POWER_MODEL_HH
