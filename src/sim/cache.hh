/**
 * @file
 * Set-associative cache with LRU replacement and a two-level
 * hierarchy front-end (paper Table 1 memory system).
 */

#ifndef DIDT_SIM_CACHE_HH
#define DIDT_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace didt
{

/** Per-cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    /** Miss ratio; 0 when never accessed. */
    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** A single set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    /** Build from geometry; all fields must be powers of two. */
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing @p address; allocates on miss.
     * @retval true hit
     * @retval false miss (line now resident)
     */
    bool access(std::uint64_t address);

    /** Probe without updating LRU or allocating. */
    bool probe(std::uint64_t address) const;

    /** Access latency in cycles. */
    std::size_t latency() const { return config_.latency; }

    /** Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** Invalidate all lines and clear statistics. */
    void reset();

    /** Clear statistics but keep cache contents (post-warm-up). */
    void clearStats() { stats_ = CacheStats{}; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint32_t lru = 0; ///< age counter; 0 = most recent
    };

    CacheConfig config_;
    std::size_t sets_;
    std::vector<Line> lines_;
    CacheStats stats_;

    std::size_t setIndex(std::uint64_t address) const;
    std::uint64_t tagOf(std::uint64_t address) const;
};

/** Where in the hierarchy an access was satisfied. */
enum class MemLevel : std::uint8_t
{
    L1,
    L2,
    Memory,
};

/** Outcome of a hierarchy access. */
struct MemAccessResult
{
    MemLevel level;       ///< level that supplied the data
    std::size_t latency;  ///< total latency in cycles
};

/**
 * Two-level hierarchy: a private L1 backed by a (shared, unified) L2
 * backed by main memory. The caller supplies the L2 so instruction and
 * data sides can share it, as in the paper's unified L2.
 */
class MemoryHierarchy
{
  public:
    /**
     * @param l1 configuration of the level-1 cache owned by this object
     * @param l2 the shared level-2 cache (not owned; must outlive this)
     * @param memory_latency main-memory latency in cycles
     */
    MemoryHierarchy(const CacheConfig &l1, Cache &l2,
                    std::size_t memory_latency);

    /** Access @p address through L1 -> L2 -> memory. */
    MemAccessResult access(std::uint64_t address);

    /** The owned L1 cache. */
    const Cache &l1() const { return l1_; }

    /** Invalidate the owned L1 (the shared L2 is reset by its owner). */
    void resetL1() { l1_.reset(); }

    /** Clear the owned L1's statistics, keeping its contents. */
    void clearL1Stats() { l1_.clearStats(); }

  private:
    Cache l1_;
    Cache &l2_;
    std::size_t memoryLatency_;
};

} // namespace didt

#endif // DIDT_SIM_CACHE_HH
