/**
 * @file
 * Set-associative cache with LRU replacement and a two-level
 * hierarchy front-end (paper Table 1 memory system).
 */

#ifndef DIDT_SIM_CACHE_HH
#define DIDT_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace didt
{

/** Per-cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    /** Miss ratio; 0 when never accessed. */
    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** A single set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    /** Build from geometry; all fields must be powers of two. */
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing @p address; allocates on miss.
     * @retval true hit
     * @retval false miss (line now resident)
     */
    bool access(std::uint64_t address);

    /** Probe without updating LRU or allocating. */
    bool probe(std::uint64_t address) const;

    /** Access latency in cycles. */
    std::size_t latency() const { return config_.latency; }

    /** Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** Invalidate all lines and clear statistics. */
    void reset();

    /** Clear statistics but keep cache contents (post-warm-up). */
    void clearStats() { stats_ = CacheStats{}; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint32_t lru = 0; ///< age counter; 0 = most recent
    };

    CacheConfig config_;
    std::size_t sets_;
    std::vector<Line> lines_;
    CacheStats stats_;

    std::size_t setIndex(std::uint64_t address) const;
    std::uint64_t tagOf(std::uint64_t address) const;
};

/**
 * Bank-conflict arbiter for a shared L2 (chip-level occupancy model).
 *
 * The shared L2 is interleaved across banks at line granularity. Each
 * cycle every core's L2 accesses claim their target bank; a claim that
 * finds the bank already claimed this cycle by a *different* core pays
 * a fixed serialization penalty per prior foreign claim. A single-core
 * machine can never conflict with itself, so routing its accesses
 * through an arbiter is latency-neutral — the invariant that keeps a
 * 1-core Chip byte-identical to the plain Processor path.
 */
class L2BankArbiter
{
  public:
    /**
     * @param banks bank count (power of two)
     * @param penalty extra cycles per conflicting foreign claim
     * @param line_bytes interleave granularity (the L2 line size)
     * @param max_cores highest core id that will claim, plus one
     */
    L2BankArbiter(std::size_t banks, std::size_t penalty,
                  std::size_t line_bytes, std::size_t max_cores);

    /** Open a new cycle: later claims no longer see older ones. */
    void beginCycle() { ++epoch_; }

    /**
     * Claim the bank holding @p address for @p core_id.
     * @return extra cycles of bank-conflict delay (0 when no other
     *         core touched the bank this cycle)
     */
    std::size_t claim(std::uint64_t address, unsigned core_id);

    /** Claims that collided with another core's same-cycle claim. */
    std::uint64_t conflicts() const { return conflicts_; }

    /** Total claims observed. */
    std::uint64_t claims() const { return totalClaims_; }

    /** Clear the conflict counters (post-warm-up). */
    void clearStats()
    {
        conflicts_ = 0;
        totalClaims_ = 0;
    }

  private:
    struct BankState
    {
        std::uint64_t epoch = 0;      ///< cycle the counts belong to
        std::uint32_t total = 0;      ///< claims this cycle
        std::vector<std::uint32_t> perCore; ///< claims per core id
    };

    std::size_t banks_;
    std::size_t penalty_;
    std::size_t lineBytes_;
    std::uint64_t epoch_ = 0;
    std::vector<BankState> state_;
    std::uint64_t conflicts_ = 0;
    std::uint64_t totalClaims_ = 0;
};

/** Where in the hierarchy an access was satisfied. */
enum class MemLevel : std::uint8_t
{
    L1,
    L2,
    Memory,
};

/** Outcome of a hierarchy access. */
struct MemAccessResult
{
    MemLevel level;       ///< level that supplied the data
    std::size_t latency;  ///< total latency in cycles
};

/**
 * Two-level hierarchy: a private L1 backed by a (shared, unified) L2
 * backed by main memory. The caller supplies the L2 so instruction and
 * data sides can share it, as in the paper's unified L2.
 */
class MemoryHierarchy
{
  public:
    /**
     * @param l1 configuration of the level-1 cache owned by this object
     * @param l2 the shared level-2 cache (not owned; must outlive this)
     * @param memory_latency main-memory latency in cycles
     * @param arbiter shared-L2 bank arbiter charged on every L1 miss
     *        (nullptr for a private/uncontended L2; not owned)
     * @param core_id claiming core's id when an arbiter is attached
     */
    MemoryHierarchy(const CacheConfig &l1, Cache &l2,
                    std::size_t memory_latency,
                    L2BankArbiter *arbiter = nullptr,
                    unsigned core_id = 0);

    /** Access @p address through L1 -> L2 -> memory. */
    MemAccessResult access(std::uint64_t address);

    /** The owned L1 cache. */
    const Cache &l1() const { return l1_; }

    /** Invalidate the owned L1 (the shared L2 is reset by its owner). */
    void resetL1() { l1_.reset(); }

    /** Clear the owned L1's statistics, keeping its contents. */
    void clearL1Stats() { l1_.clearStats(); }

  private:
    Cache l1_;
    Cache &l2_;
    std::size_t memoryLatency_;
    L2BankArbiter *arbiter_;
    unsigned coreId_;
};

} // namespace didt

#endif // DIDT_SIM_CACHE_HH
