#include "sim/fu_pool.hh"

#include "util/logging.hh"

namespace didt
{

FuClass
fuClassFor(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        return FuClass::IntAlu;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuClass::IntMultDiv;
      case OpClass::FpAlu:
        return FuClass::FpAlu;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return FuClass::FpMultDiv;
      case OpClass::Load:
      case OpClass::Store:
        return FuClass::MemPort;
    }
    didt_panic("unknown OpClass ", static_cast<int>(op));
}

FuPool::FuPool(const ProcessorConfig &config)
{
    busyUntil_.resize(5);
    busyUntil_[static_cast<std::size_t>(FuClass::IntAlu)]
        .assign(config.intAluCount, 0);
    busyUntil_[static_cast<std::size_t>(FuClass::IntMultDiv)]
        .assign(config.intMultCount, 0);
    busyUntil_[static_cast<std::size_t>(FuClass::FpAlu)]
        .assign(config.fpAluCount, 0);
    busyUntil_[static_cast<std::size_t>(FuClass::FpMultDiv)]
        .assign(config.fpMultCount, 0);
    busyUntil_[static_cast<std::size_t>(FuClass::MemPort)]
        .assign(config.memPortCount, 0);
}

bool
FuPool::tryIssue(FuClass cls, Cycle now, Cycle busy_cycles)
{
    auto &units = busyUntil_[static_cast<std::size_t>(cls)];
    for (auto &busy_until : units) {
        if (busy_until <= now) {
            busy_until = now + busy_cycles;
            return true;
        }
    }
    return false;
}

void
FuPool::undoIssue(FuClass cls, Cycle now, Cycle busy_cycles)
{
    auto &units = busyUntil_[static_cast<std::size_t>(cls)];
    for (auto &busy_until : units) {
        if (busy_until == now + busy_cycles) {
            busy_until = 0;
            return;
        }
    }
    didt_panic("undoIssue with no matching reservation");
}

std::size_t
FuPool::busyCount(FuClass cls, Cycle now) const
{
    const auto &units = busyUntil_[static_cast<std::size_t>(cls)];
    std::size_t busy = 0;
    for (auto busy_until : units)
        if (busy_until > now)
            ++busy;
    return busy;
}

std::size_t
FuPool::unitCount(FuClass cls) const
{
    return busyUntil_[static_cast<std::size_t>(cls)].size();
}

void
FuPool::reset()
{
    for (auto &units : busyUntil_)
        for (auto &busy_until : units)
            busy_until = 0;
}

std::size_t
executeLatency(const ProcessorConfig &config, OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        return config.intAluLatency;
      case OpClass::IntMult:
        return config.intMultLatency;
      case OpClass::IntDiv:
        return config.intDivLatency;
      case OpClass::FpAlu:
        return config.fpAluLatency;
      case OpClass::FpMult:
        return config.fpMultLatency;
      case OpClass::FpDiv:
        return config.fpDivLatency;
      case OpClass::Load:
      case OpClass::Store:
        return 1; // address generation; cache latency added separately
    }
    didt_panic("unknown OpClass ", static_cast<int>(op));
}

bool
isUnpipelined(OpClass op)
{
    return op == OpClass::IntDiv || op == OpClass::FpDiv;
}

} // namespace didt
