#include "sim/cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace didt
{

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    if (config_.lineBytes == 0 || !std::has_single_bit(config_.lineBytes))
        didt_fatal("cache line size must be a power of two, got ",
                   config_.lineBytes);
    if (config_.associativity == 0)
        didt_fatal("cache associativity must be positive");
    const std::size_t line_count = config_.sizeBytes / config_.lineBytes;
    if (line_count == 0 || line_count % config_.associativity != 0)
        didt_fatal("cache geometry invalid: ", config_.sizeBytes, "B / ",
                   config_.lineBytes, "B lines / ", config_.associativity,
                   " ways");
    sets_ = line_count / config_.associativity;
    if (!std::has_single_bit(sets_))
        didt_fatal("cache set count must be a power of two, got ", sets_);
    lines_.assign(line_count, Line{});
}

std::size_t
Cache::setIndex(std::uint64_t address) const
{
    return (address / config_.lineBytes) & (sets_ - 1);
}

std::uint64_t
Cache::tagOf(std::uint64_t address) const
{
    return (address / config_.lineBytes) / sets_;
}

bool
Cache::access(std::uint64_t address)
{
    ++stats_.accesses;
    const std::size_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    Line *base = &lines_[set * config_.associativity];

    Line *hit = nullptr;
    Line *victim = base;
    for (std::size_t w = 0; w < config_.associativity; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            hit = &line;
            break;
        }
        if (!line.valid) {
            if (victim->valid)
                victim = &line;
        } else if (victim->valid && line.lru > victim->lru) {
            victim = &line;
        }
    }

    for (std::size_t w = 0; w < config_.associativity; ++w)
        if (base[w].lru < UINT32_MAX)
            ++base[w].lru;

    if (hit) {
        hit->lru = 0;
        return true;
    }

    ++stats_.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = 0;
    return false;
}

bool
Cache::probe(std::uint64_t address) const
{
    const std::size_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    const Line *base = &lines_[set * config_.associativity];
    for (std::size_t w = 0; w < config_.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    stats_ = CacheStats{};
}

L2BankArbiter::L2BankArbiter(std::size_t banks, std::size_t penalty,
                             std::size_t line_bytes,
                             std::size_t max_cores)
    : banks_(banks), penalty_(penalty), lineBytes_(line_bytes)
{
    if (banks_ == 0 || !std::has_single_bit(banks_))
        didt_fatal("L2 bank count must be a power of two, got ", banks_);
    if (lineBytes_ == 0 || !std::has_single_bit(lineBytes_))
        didt_fatal("L2 bank interleave must be a power of two, got ",
                   lineBytes_);
    if (max_cores == 0)
        didt_fatal("L2 arbiter needs at least one core");
    state_.resize(banks_);
    for (BankState &bank : state_)
        bank.perCore.assign(max_cores, 0);
}

std::size_t
L2BankArbiter::claim(std::uint64_t address, unsigned core_id)
{
    BankState &bank = state_[(address / lineBytes_) & (banks_ - 1)];
    if (bank.epoch != epoch_) {
        bank.epoch = epoch_;
        bank.total = 0;
        std::fill(bank.perCore.begin(), bank.perCore.end(), 0);
    }
    if (core_id >= bank.perCore.size())
        didt_panic("L2 arbiter claim from unknown core ", core_id);
    const std::uint32_t foreign = bank.total - bank.perCore[core_id];
    ++bank.perCore[core_id];
    ++bank.total;
    ++totalClaims_;
    if (foreign > 0)
        ++conflicts_;
    return penalty_ * foreign;
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig &l1, Cache &l2,
                                 std::size_t memory_latency,
                                 L2BankArbiter *arbiter, unsigned core_id)
    : l1_(l1), l2_(l2), memoryLatency_(memory_latency),
      arbiter_(arbiter), coreId_(core_id)
{
}

MemAccessResult
MemoryHierarchy::access(std::uint64_t address)
{
    if (l1_.access(address))
        return {MemLevel::L1, l1_.latency()};
    const std::size_t conflict =
        arbiter_ ? arbiter_->claim(address, coreId_) : 0;
    if (l2_.access(address))
        return {MemLevel::L2, l1_.latency() + l2_.latency() + conflict};
    return {MemLevel::Memory,
            l1_.latency() + l2_.latency() + conflict + memoryLatency_};
}

} // namespace didt
