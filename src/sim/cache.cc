#include "sim/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace didt
{

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    if (config_.lineBytes == 0 || !std::has_single_bit(config_.lineBytes))
        didt_fatal("cache line size must be a power of two, got ",
                   config_.lineBytes);
    if (config_.associativity == 0)
        didt_fatal("cache associativity must be positive");
    const std::size_t line_count = config_.sizeBytes / config_.lineBytes;
    if (line_count == 0 || line_count % config_.associativity != 0)
        didt_fatal("cache geometry invalid: ", config_.sizeBytes, "B / ",
                   config_.lineBytes, "B lines / ", config_.associativity,
                   " ways");
    sets_ = line_count / config_.associativity;
    if (!std::has_single_bit(sets_))
        didt_fatal("cache set count must be a power of two, got ", sets_);
    lines_.assign(line_count, Line{});
}

std::size_t
Cache::setIndex(std::uint64_t address) const
{
    return (address / config_.lineBytes) & (sets_ - 1);
}

std::uint64_t
Cache::tagOf(std::uint64_t address) const
{
    return (address / config_.lineBytes) / sets_;
}

bool
Cache::access(std::uint64_t address)
{
    ++stats_.accesses;
    const std::size_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    Line *base = &lines_[set * config_.associativity];

    Line *hit = nullptr;
    Line *victim = base;
    for (std::size_t w = 0; w < config_.associativity; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            hit = &line;
            break;
        }
        if (!line.valid) {
            if (victim->valid)
                victim = &line;
        } else if (victim->valid && line.lru > victim->lru) {
            victim = &line;
        }
    }

    for (std::size_t w = 0; w < config_.associativity; ++w)
        if (base[w].lru < UINT32_MAX)
            ++base[w].lru;

    if (hit) {
        hit->lru = 0;
        return true;
    }

    ++stats_.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = 0;
    return false;
}

bool
Cache::probe(std::uint64_t address) const
{
    const std::size_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    const Line *base = &lines_[set * config_.associativity];
    for (std::size_t w = 0; w < config_.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    stats_ = CacheStats{};
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig &l1, Cache &l2,
                                 std::size_t memory_latency)
    : l1_(l1), l2_(l2), memoryLatency_(memory_latency)
{
}

MemAccessResult
MemoryHierarchy::access(std::uint64_t address)
{
    if (l1_.access(address))
        return {MemLevel::L1, l1_.latency()};
    if (l2_.access(address))
        return {MemLevel::L2, l1_.latency() + l2_.latency()};
    return {MemLevel::Memory,
            l1_.latency() + l2_.latency() + memoryLatency_};
}

} // namespace didt
