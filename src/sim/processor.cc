#include "sim/processor.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace didt
{

namespace
{

/** Noise RNG seed of the pre-CMP uniprocessor (core 0 keeps it). */
constexpr std::uint64_t kNoiseSeed = 0x51CA7E5EEDULL;

/** Stable 64-bit hash (splitmix-style finalizer). */
std::uint64_t
hashCoreId(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/**
 * Per-core noise seed: core 0 keeps the historical seed bit-for-bit;
 * other cores decorrelate their data-dependent switching noise.
 */
std::uint64_t
noiseSeedFor(unsigned core_id)
{
    return core_id == 0 ? kNoiseSeed : kNoiseSeed ^ hashCoreId(core_id);
}

/** Slots of the wrong-path activity moving averages. */
enum EmaSlot : std::size_t
{
    kEmaIntAlu,
    kEmaFpAlu,
    kEmaIntMult,
    kEmaFpMult,
    kEmaLsq,
    kEmaDcache,
    kEmaRegReads,
    kEmaRegWrites,
    kEmaDispatch,
};
static_assert(kEmaDispatch + 1 == kNumActivityEmas);

/**
 * Structure -> moving-average table driving the wrong-path activity
 * model: each entry maps an ActivitySample field to the average slot
 * that boosts it during misprediction recovery. `tracked` entries also
 * feed that slot outside recovery; decoded mirrors the dispatch
 * average without contributing to it, exactly as the hand-unrolled
 * ladder did. Table order is the historical boost order (results are
 * independent of it — every entry touches a distinct field — but
 * keeping it makes the equivalence easy to audit). The flat layout is
 * the SoA seam for vectorizing power accumulation later.
 */
struct EmaEntry
{
    std::size_t ActivitySample::*field;
    std::size_t slot;
    bool tracked;
};

constexpr EmaEntry kEmaTable[] = {
    {&ActivitySample::issuedIntAlu, kEmaIntAlu, true},
    {&ActivitySample::issuedFpAlu, kEmaFpAlu, true},
    {&ActivitySample::issuedIntMult, kEmaIntMult, true},
    {&ActivitySample::issuedFpMult, kEmaFpMult, true},
    {&ActivitySample::lsqOps, kEmaLsq, true},
    {&ActivitySample::dcacheAccesses, kEmaDcache, true},
    {&ActivitySample::regReads, kEmaRegReads, true},
    {&ActivitySample::regWrites, kEmaRegWrites, true},
    {&ActivitySample::dispatched, kEmaDispatch, true},
    {&ActivitySample::decoded, kEmaDispatch, false},
};

} // namespace

Core::Core(const ProcessorConfig &config,
           const PowerModelConfig &power_config, InstructionSource &source,
           Cache &l2, L2BankArbiter *arbiter, unsigned core_id)
    : config_(config),
      power_(power_config, config),
      source_(source),
      bpred_(config),
      l2_(l2),
      icache_(config.l1i, l2_, config.memoryLatency, arbiter, core_id),
      dcache_(config.l1d, l2_, config.memoryLatency, arbiter, core_id),
      fus_(config),
      coreId_(core_id),
      addrBase_(static_cast<std::uint64_t>(core_id) << 40),
      seqRing_(kSeqRingSize),
      missRetireRing_(1024, 0),
      noiseRng_(noiseSeedFor(core_id))
{
    if (config_.memoryLatency + config_.l2.latency + config_.l1d.latency +
            8 >=
        missRetireRing_.size())
        didt_fatal("memory latency too large for the MSHR retire ring");
    if (config_.ruuSize == 0 || config_.lsqSize == 0)
        didt_fatal("window sizes must be positive");
    if (config_.ruuSize + config_.frontEndDepth * config_.fetchWidth >=
        kSeqRingSize)
        didt_fatal("RUU too large for the dependency ring");

    // Preallocate the SoA pipeline rings: power-of-two capacities so
    // logical-to-physical indexing is a mask, never a division. The
    // front end can briefly exceed its steady bound by one fetch group
    // (the bound is checked before a group is fetched), so size for it.
    const std::size_t win_cap = std::bit_ceil(config_.ruuSize);
    winMask_ = win_cap - 1;
    winSeq_.resize(win_cap);
    winOp_.resize(win_cap);
    winDep1_.resize(win_cap);
    winDep2_.resize(win_cap);
    winAddr_.resize(win_cap);
    winIssued_.resize(win_cap);
    winComplete_.resize(win_cap);
    winInLsq_.resize(win_cap);
    winCompleteCycle_.resize(win_cap);

    const std::size_t fe_bound =
        (config_.frontEndDepth + 2) * config_.fetchWidth;
    const std::size_t fe_cap = std::bit_ceil(fe_bound + config_.fetchWidth);
    feMask_ = fe_cap - 1;
    feOp_.resize(fe_cap);
    feDep1_.resize(fe_cap);
    feDep2_.resize(fe_cap);
    feAddr_.resize(fe_cap);
    feSeq_.resize(fe_cap);
    feReady_.resize(fe_cap);
}

Core::~Core()
{
    // Per-cycle counting stays in stats_; the registry sees one flush
    // per simulated machine so the hot loop pays nothing for metrics.
    if (!obs::metricsEnabled())
        return;
    struct SimMetrics
    {
        obs::Counter cycles;
        obs::Counter committed;
        obs::Counter fetched;
        obs::Counter issued;
        obs::Counter stallCycles;
        obs::Counter noopsInjected;
        obs::Counter mispredicts;
        obs::Counter l2Misses;
    };
    static SimMetrics metrics{
        obs::MetricsRegistry::global().counter("sim.cycles"),
        obs::MetricsRegistry::global().counter("sim.committed"),
        obs::MetricsRegistry::global().counter("sim.fetched"),
        obs::MetricsRegistry::global().counter("sim.issued"),
        obs::MetricsRegistry::global().counter("sim.issue_stall_cycles"),
        obs::MetricsRegistry::global().counter("sim.noops_injected"),
        obs::MetricsRegistry::global().counter("sim.mispredicts"),
        obs::MetricsRegistry::global().counter("sim.l2_misses"),
    };
    metrics.cycles.add(stats_.cycles);
    metrics.committed.add(stats_.committed);
    metrics.fetched.add(stats_.fetched);
    metrics.issued.add(stats_.issued);
    metrics.stallCycles.add(stats_.issueStallCycles);
    metrics.noopsInjected.add(stats_.noopsInjected);
    metrics.mispredicts.add(stats_.mispredicts);
    metrics.l2Misses.add(stats_.l2Misses);
}

Cycle
Core::depReadyCycle(std::uint64_t producer_seq) const
{
    const SeqSlot &slot = seqRing_[producer_seq % kSeqRingSize];
    if (slot.seq != producer_seq)
        return 0; // overwritten: the producer is long since done
    return slot.ready;
}

bool
Core::depReady(std::uint64_t seq, std::uint32_t dep1,
               std::uint32_t dep2) const
{
    auto check = [&](std::uint32_t dist) {
        if (dist == 0)
            return true;
        if (dist > seq)
            return true; // depends on pre-trace state
        const Cycle ready = depReadyCycle(seq - dist);
        return ready != kUnknownReady && ready <= now_;
    };
    return check(dep1) && check(dep2);
}

void
Core::doCommit()
{
    std::size_t committed = 0;
    while (winCount_ > 0 && committed < config_.commitWidth) {
        const std::size_t s = winHead_;
        if (!winComplete_[s] || winCompleteCycle_[s] > now_)
            break;
        if (winInLsq_[s]) {
            if (lsqOccupancy_ == 0)
                didt_panic("LSQ underflow at commit");
            --lsqOccupancy_;
        }
        winHead_ = (s + 1) & winMask_;
        --winCount_;
        ++committed;
        ++stats_.committed;
    }
    lastActivity_.committed = committed;
}

void
Core::doComplete()
{
    // Mark instructions whose execution finishes this cycle and charge
    // their writeback register-file traffic. The issued-but-incomplete
    // occupancy count makes idle and stalled cycles free: the write
    // count is an order-independent integer, so skipping the scan when
    // nothing is in flight is exact.
    if (inFlight_ == 0)
        return;
    std::size_t writes = 0;
    for (std::size_t i = 0; i < winCount_; ++i) {
        const std::size_t s = (winHead_ + i) & winMask_;
        if (winIssued_[s] && !winComplete_[s] &&
            winCompleteCycle_[s] <= now_) {
            winComplete_[s] = 1;
            --inFlight_;
            const OpClass op = winOp_[s];
            if (op != OpClass::Store && op != OpClass::Branch &&
                op != OpClass::Nop)
                ++writes;
            if (inFlight_ == 0)
                break;
        }
    }
    lastActivity_.regWrites += writes;
}

void
Core::doIssue()
{
    if (stallIssue_) {
        ++stats_.issueStallCycles;
    } else {
        std::size_t issued = 0;
        const std::size_t issue_width = config_.decodeWidth + 2;
        for (std::size_t i = 0; i < winCount_; ++i) {
            if (issued >= issue_width)
                break;
            const std::size_t s = (winHead_ + i) & winMask_;
            if (winIssued_[s] ||
                !depReady(winSeq_[s], winDep1_[s], winDep2_[s]))
                continue;

            const OpClass op = winOp_[s];
            const FuClass cls = fuClassFor(op);
            const std::size_t exec_lat = executeLatency(config_, op);
            const Cycle busy = isUnpipelined(op) ? exec_lat : 1;
            if (!fus_.tryIssue(cls, now_, busy))
                continue;

            Cycle total_lat = exec_lat;
            if (op == OpClass::Load) {
                // MSHR limit: a load that would miss the L1 cannot
                // issue while all miss registers are busy.
                if (outstandingMisses_ >= config_.mshrCount &&
                    !dcache_.l1().probe(winAddr_[s] + addrBase_)) {
                    fus_.undoIssue(cls, now_);
                    continue;
                }
                const MemAccessResult res =
                    dcache_.access(winAddr_[s] + addrBase_);
                total_lat += res.latency;
                ++stats_.l1dAccesses;
                if (res.level != MemLevel::L1) {
                    ++stats_.l1dMisses;
                    ++lastActivity_.l2Accesses;
                    ++outstandingMisses_;
                    ++missRetireRing_[(now_ + total_lat) %
                                      missRetireRing_.size()];
                }
                ++lastActivity_.dcacheAccesses;
                ++lastActivity_.lsqOps;
            } else if (op == OpClass::Store) {
                // Stores write the cache at issue (simplified
                // write-allocate; store completion does not gate
                // dependents through memory).
                const MemAccessResult res =
                    dcache_.access(winAddr_[s] + addrBase_);
                ++stats_.l1dAccesses;
                if (res.level != MemLevel::L1) {
                    ++stats_.l1dMisses;
                    ++lastActivity_.l2Accesses;
                }
                ++lastActivity_.dcacheAccesses;
                ++lastActivity_.lsqOps;
            }

            winIssued_[s] = 1;
            ++inFlight_;
            winCompleteCycle_[s] = now_ + total_lat;
            seqRing_[winSeq_[s] % kSeqRingSize].ready =
                winCompleteCycle_[s];
            ++issued;
            ++stats_.issued;
            lastActivity_.regReads += 2;

            switch (cls) {
              case FuClass::IntAlu:
                ++lastActivity_.issuedIntAlu;
                break;
              case FuClass::IntMultDiv:
                ++lastActivity_.issuedIntMult;
                break;
              case FuClass::FpAlu:
                ++lastActivity_.issuedFpAlu;
                break;
              case FuClass::FpMultDiv:
                ++lastActivity_.issuedFpMult;
                break;
              case FuClass::MemPort:
                break;
            }

            // A resolving mispredicted branch unblocks fetch after the
            // redirect penalty (minus the front-end refill already
            // modeled by the dispatch-ready delay).
            if (fetchBlockedOnBranch_ &&
                winSeq_[s] == blockingBranchSeq_) {
                const std::size_t refill =
                    config_.branchPenalty > config_.frontEndDepth
                        ? config_.branchPenalty - config_.frontEndDepth
                        : 0;
                fetchBlockedOnBranch_ = false;
                fetchResumeCycle_ = std::max(
                    fetchResumeCycle_, winCompleteCycle_[s] + refill);
                branchRecoveryUntil_ = fetchResumeCycle_;
            }
        }
    }

    // dI/dt high actuation: issue no-ops to the still-idle units to pull
    // current up. No architectural effect; pure activity.
    if (injectNoops_) {
        auto fill = [&](FuClass cls, std::size_t &counter) {
            const std::size_t idle =
                fus_.unitCount(cls) - fus_.busyCount(cls, now_);
            counter += idle;
            stats_.noopsInjected += idle;
        };
        fill(FuClass::IntAlu, lastActivity_.issuedIntAlu);
        fill(FuClass::FpAlu, lastActivity_.issuedFpAlu);
        fill(FuClass::IntMultDiv, lastActivity_.issuedIntMult);
        fill(FuClass::FpMultDiv, lastActivity_.issuedFpMult);
    }
}

void
Core::doDispatch()
{
    std::size_t dispatched = 0;
    while (feCount_ > 0 && dispatched < config_.decodeWidth) {
        const std::size_t f = feHead_;
        if (feReady_[f] > now_)
            break;
        if (winCount_ >= config_.ruuSize)
            break;
        const OpClass op = feOp_[f];
        const bool is_mem = isMemOp(op);
        if (is_mem && lsqOccupancy_ >= config_.lsqSize)
            break;

        const std::uint64_t seq = feSeq_[f];
        const std::size_t s = (winHead_ + winCount_) & winMask_;
        winSeq_[s] = seq;
        winOp_[s] = op;
        winDep1_[s] = feDep1_[f];
        winDep2_[s] = feDep2_[f];
        winAddr_[s] = feAddr_[f];
        winIssued_[s] = 0;
        winComplete_[s] = 0;
        winInLsq_[s] = is_mem;
        winCompleteCycle_[s] = 0;
        if (is_mem)
            ++lsqOccupancy_;

        seqRing_[seq % kSeqRingSize] = SeqSlot{seq, kUnknownReady};
        ++winCount_;
        feHead_ = (f + 1) & feMask_;
        --feCount_;
        ++dispatched;
        ++stats_.dispatched;
    }
    lastActivity_.dispatched = dispatched;
    lastActivity_.decoded = dispatched;
}

void
Core::doFetch()
{
    if (sourceExhausted_)
        return;
    if (fetchBlockedOnBranch_ || branchRecoveryUntil_ > now_) {
        // Wrong-path execution: while recovering from a misprediction
        // the front end keeps fetching and decoding down the wrong
        // path, so its power does not drop to idle (only the useful
        // work does). Charged as activity, discarded architecturally.
        lastActivity_.fetched = config_.fetchWidth;
        lastActivity_.decoded = config_.decodeWidth;
        ++lastActivity_.bpredLookups;
        return;
    }
    if (fetchResumeCycle_ > now_)
        return;
    // Bound the front-end queue to its pipeline capacity plus two
    // fetch groups of slack so balanced fill/drain does not stutter.
    if (feCount_ >= (config_.frontEndDepth + 2) * config_.fetchWidth)
        return;

    std::size_t fetched = 0;
    while (fetched < config_.fetchWidth) {
        Instruction inst;
        if (!source_.next(inst)) {
            sourceExhausted_ = true;
            break;
        }

        // Instruction-cache access for the first instruction of each
        // fetch block; a miss stalls fetch for the fill latency.
        if (fetched == 0) {
            const MemAccessResult res = icache_.access(inst.pc + addrBase_);
            if (res.level != MemLevel::L1) {
                ++stats_.l1iMisses;
                ++lastActivity_.l2Accesses;
                fetchResumeCycle_ = now_ + res.latency;
            }
        }

        const std::uint64_t seq = nextSeq_++;
        const std::size_t f = (feHead_ + feCount_) & feMask_;
        feOp_[f] = inst.op;
        feDep1_[f] = inst.dep1;
        feDep2_[f] = inst.dep2;
        feAddr_[f] = inst.address;
        feSeq_[f] = seq;
        feReady_[f] = now_ + config_.frontEndDepth;
        ++feCount_;
        ++fetched;
        ++stats_.fetched;

        if (inst.op == OpClass::Branch) {
            ++stats_.branches;
            ++lastActivity_.bpredLookups;
            const BranchPrediction pred = bpred_.predictAndTrain(inst);
            if (pred.mispredict) {
                ++stats_.mispredicts;
                fetchBlockedOnBranch_ = true;
                blockingBranchSeq_ = seq;
                break;
            }
            if (inst.taken)
                break; // taken branches end the fetch block
        }
    }
    lastActivity_.fetched = fetched;
}

bool
Core::step()
{
    lastActivity_ = ActivitySample{};
    lastActivity_.windowOccupancy = winCount_;

    // Retire MSHRs whose misses complete this cycle.
    auto &retiring = missRetireRing_[now_ % missRetireRing_.size()];
    if (retiring > 0) {
        outstandingMisses_ -= retiring;
        retiring = 0;
    }

    // Stage order models same-cycle structural reuse conservatively:
    // commit frees slots for next cycle's dispatch, not this one's.
    doCommit();
    doComplete();
    doIssue();
    doDispatch();
    doFetch();

    // Wrong-path execution: while recovering from a misprediction the
    // machine keeps issuing and executing down the wrong path at close
    // to its recent pace, so current does not collapse to idle. Charge
    // synthetic activity tracking the pre-recovery moving average.
    // Both directions walk the structure->average table (kEmaTable):
    // during recovery every mapped field is boosted to its average;
    // otherwise each tracked field feeds its average.
    const bool recovering =
        fetchBlockedOnBranch_ || branchRecoveryUntil_ > now_;
    if (recovering) {
        for (const EmaEntry &entry : kEmaTable) {
            std::size_t &field = lastActivity_.*(entry.field);
            const auto target =
                static_cast<std::size_t>(emas_[entry.slot] + 0.5);
            field = std::max(field, target);
        }
    } else {
        // Every tracked entry feeds a distinct slot, so the averages
        // are independent accumulators: gather the targets in slot
        // order and run the table-driven EMA kernel (bit-for-bit the
        // scalar ladder; see KernelTable::emaUpdate).
        constexpr double alpha = 1.0 / 32.0;
        std::array<double, kNumActivityEmas> targets;
        for (const EmaEntry &entry : kEmaTable)
            if (entry.tracked)
                targets[entry.slot] = static_cast<double>(
                    lastActivity_.*(entry.field));
        simd::kernels().emaUpdate(emas_.data(), targets.data(),
                                  kNumActivityEmas, alpha);
    }

    const std::uint64_t l2_misses_now = l2_.stats().misses;
    lastCycleL2Miss_ = l2_misses_now != prevL2Misses_;
    prevL2Misses_ = l2_misses_now;
    stats_.l2Accesses = l2_.stats().accesses;
    stats_.l2Misses = l2_misses_now;

    Watt watts = power_.cyclePower(lastActivity_);

    // Pipelined structures keep switching for a few cycles after the
    // access that started them: spread this cycle's dynamic power over
    // the next spreadStages cycles (paper Section 3.2).
    const std::size_t spread = power_.config().spreadStages;
    if (spread > 1) {
        if (spreadRing_.size() != spread)
            spreadRing_.assign(spread, 0.0);
        const Watt idle = power_.idlePower();
        const Watt dynamic = std::max(0.0, watts - idle);
        for (std::size_t s = 0; s < spread; ++s)
            spreadRing_[(spreadHead_ + s) % spread] +=
                dynamic / static_cast<double>(spread);
        watts = idle + spreadRing_[spreadHead_];
        spreadRing_[spreadHead_] = 0.0;
        spreadHead_ = (spreadHead_ + 1) % spread;
    }

    // Data-dependent switching noise: operand values modulate the
    // toggled capacitance, so real current is not quantized to the
    // handful of levels the activity counts alone produce. The noise
    // scales with switching activity — an idle, stalled machine draws
    // a nearly deterministic current (which is why the paper's
    // low-variance memory-stall windows classify as non-Gaussian).
    const double sigma = power_.config().currentNoiseSigma;
    if (sigma > 0.0) {
        const Watt idle = power_.idlePower();
        const Watt peak = power_.peakPower();
        const double activity = std::clamp(
            (watts - idle) / std::max(1.0, peak - idle), 0.0, 1.0);
        // A stalled machine barely switches: below a small activity
        // floor the current is effectively deterministic, which is
        // what makes memory-bound stall windows non-Gaussian
        // (degenerate) in the paper's Figure 12.
        const double sigma_eff =
            activity < 0.15 ? 0.0 : sigma * std::sqrt(activity);
        watts = std::max(idle * 0.9,
                         watts + noiseRng_.normal(0.0, sigma_eff) *
                                     config_.nominalVoltage);
    }
    lastCurrent_ = watts / config_.nominalVoltage;
    stats_.totalEnergyJ += watts / config_.clockHz;

    ++now_;
    ++stats_.cycles;

    const bool drained =
        sourceExhausted_ && winCount_ == 0 && feCount_ == 0;
    return !drained;
}

void
Core::warmup(InstructionSource &warm_source, std::uint64_t instructions)
{
    if (now_ != 0)
        didt_panic("warmup() must run before the timed simulation");
    Instruction inst;
    for (std::uint64_t i = 0; i < instructions; ++i) {
        if (!warm_source.next(inst))
            break;
        icache_.access(inst.pc + addrBase_);
        if (isMemOp(inst.op))
            dcache_.access(inst.address + addrBase_);
        if (inst.op == OpClass::Branch)
            bpred_.predictAndTrain(inst);
    }
    // The warm-up must not pollute the measured statistics: clear
    // counters while keeping trained/loaded state.
    bpred_.clearStats();
    l2_.clearStats();
    icache_.clearL1Stats();
    dcache_.clearL1Stats();
    prevL2Misses_ = 0;
}

void
Core::warmupFootprint(std::span<const std::uint64_t> data_lines,
                      std::span<const std::uint64_t> code_lines)
{
    if (now_ != 0)
        didt_panic("warmupFootprint() must run before the timed "
                   "simulation");
    for (std::uint64_t addr : data_lines)
        dcache_.access(addr + addrBase_);
    for (std::uint64_t addr : code_lines)
        icache_.access(addr + addrBase_);
    l2_.clearStats();
    icache_.clearL1Stats();
    dcache_.clearL1Stats();
    prevL2Misses_ = 0;
}

void
Core::dumpStats(std::ostream &os) const
{
    auto line = [&os](const char *name, double value) {
        os << std::left << std::setw(28) << name << value << '\n';
    };
    line("sim.cycles", static_cast<double>(stats_.cycles));
    line("sim.fetched", static_cast<double>(stats_.fetched));
    line("sim.dispatched", static_cast<double>(stats_.dispatched));
    line("sim.issued", static_cast<double>(stats_.issued));
    line("sim.committed", static_cast<double>(stats_.committed));
    line("sim.ipc", stats_.ipc());
    line("bpred.lookups", static_cast<double>(bpred_.stats().lookups));
    line("bpred.mispredictRate", bpred_.stats().mispredictRate());
    line("bpred.rasUnderflows",
         static_cast<double>(bpred_.stats().rasUnderflows));
    line("cache.l1d.accesses", static_cast<double>(stats_.l1dAccesses));
    line("cache.l1d.missRate",
         stats_.l1dAccesses
             ? static_cast<double>(stats_.l1dMisses) /
                   static_cast<double>(stats_.l1dAccesses)
             : 0.0);
    line("cache.l1i.misses", static_cast<double>(stats_.l1iMisses));
    line("cache.l2.accesses", static_cast<double>(stats_.l2Accesses));
    line("cache.l2.misses", static_cast<double>(stats_.l2Misses));
    line("cache.l2.mpki", stats_.l2Mpki());
    line("power.energyJ", stats_.totalEnergyJ);
    line("power.meanWatts",
         stats_.cycles ? stats_.totalEnergyJ /
                             (static_cast<double>(stats_.cycles) /
                              config_.clockHz)
                       : 0.0);
    line("didt.noopsInjected",
         static_cast<double>(stats_.noopsInjected));
    line("didt.issueStallCycles",
         static_cast<double>(stats_.issueStallCycles));
}

Cycle
Core::collectTrace(CurrentTrace &trace, Cycle max_cycles)
{
    reserveTraceCapacity(trace, max_cycles);
    Cycle executed = 0;
    while (executed < max_cycles) {
        const bool more = step();
        trace.push_back(lastCurrent_);
        ++executed;
        if (!more)
            break;
    }
    return executed;
}

std::uint64_t
Core::fastForward(Cycle cycles)
{
    if (cycles == 0)
        return 0;
    // Estimate how many instructions the skipped cycles cover from the
    // detailed-simulation pace so far; a machine with no detailed
    // history yet assumes one instruction per cycle.
    const double ipc =
        stats_.cycles ? static_cast<double>(stats_.committed) /
                            static_cast<double>(stats_.cycles)
                      : 1.0;
    const auto insts = static_cast<std::uint64_t>(std::llround(
        std::max(1.0, ipc * static_cast<double>(cycles))));

    // Bounded functional warming: skim the stream to near the resume
    // point (cheap positional advance, no per-instruction work) and
    // functionally execute only the tail adjacent to it. The skipped
    // middle would have re-touched the same stationary working set the
    // caches already hold, so the tail re-establishes recency at a
    // cost independent of the skip length.
    const std::uint64_t warm_insts =
        std::min(insts, SamplingConfig::kFunctionalWarmInsts);
    std::uint64_t advanced = 0;
    if (const std::uint64_t skim = insts - warm_insts; skim > 0) {
        const std::uint64_t got = source_.skipInstructions(skim);
        advanced += got;
        if (got < skim)
            sourceExhausted_ = true;
    }

    Instruction inst;
    while (advanced < insts && !sourceExhausted_) {
        if (!source_.next(inst)) {
            sourceExhausted_ = true;
            break;
        }
        ++advanced;
        icache_.access(inst.pc + addrBase_);
        if (isMemOp(inst.op))
            dcache_.access(inst.address + addrBase_);
        if (inst.op == OpClass::Branch)
            bpred_.predictAndTrain(inst);
    }

    // Jump the clock across the segment. Every pending completion now
    // lies in the skipped past, so in-flight work finishes immediately
    // on resume; outstanding misses retired inside the skip.
    now_ += cycles;
    std::fill(missRetireRing_.begin(), missRetireRing_.end(),
              std::uint16_t{0});
    outstandingMisses_ = 0;
    // Misses generated by the functional stream are not a detailed-
    // cycle L2 event: resynchronize the delta tracker.
    prevL2Misses_ = l2_.stats().misses;

    stats_.sampledSkipCycles += cycles;
    stats_.sampledSkipInstructions += advanced;
    return advanced;
}

Cycle
Core::collectTraceSampled(CurrentTrace &trace, Cycle max_cycles,
                          const SamplingConfig &sampling)
{
    sampling.validate();
    if (!sampling.enabled())
        return collectTrace(trace, max_cycles);
    reserveTraceCapacity(trace, max_cycles);

    Cycle total = 0;
    bool more = true;

    std::vector<double> prev;
    std::vector<double> cur;
    prev.reserve(sampling.detailCycles);
    cur.reserve(sampling.detailCycles);

    auto runDetail = [&](std::vector<double> &out) {
        out.clear();
        const Cycle target =
            std::min<Cycle>(sampling.detailCycles, max_cycles - total);
        while (out.size() < target && more) {
            more = step();
            out.push_back(lastCurrent_);
        }
        total += out.size();
    };

    // Leading detailed window anchors the first reconstruction.
    runDetail(cur);
    trace.insert(trace.end(), cur.begin(), cur.end());
    prev.swap(cur);

    while (more && total < max_cycles) {
        // Skipped segment: functional fast-forward, then a detailed
        // pipeline refill whose samples are discarded (they belong to
        // the reconstructed gap, not the next window).
        const Cycle gap =
            std::min<Cycle>(sampling.skipCycles, max_cycles - total);
        const Cycle warm = std::min<Cycle>(sampling.warmupCycles, gap);
        fastForward(gap - warm);
        for (Cycle w = 0; w < warm && more; ++w)
            more = step();
        total += gap;

        const double fallback = lastCurrent_;
        if (!more || total >= max_cycles) {
            // End of run inside a skip: tile the last window out.
            appendReconstructedGap(prev, std::vector<double>(), gap,
                                   fallback, trace);
            break;
        }

        runDetail(cur);
        appendReconstructedGap(prev, cur, gap, fallback, trace);
        trace.insert(trace.end(), cur.begin(), cur.end());
        prev.swap(cur);
    }
    return total;
}

} // namespace didt
