#include "sim/chip.hh"

#include "util/logging.hh"

namespace didt
{

Chip::Chip(const ChipConfig &config, const PowerModelConfig &power_config,
           std::span<InstructionSource *const> sources)
    : config_(config),
      l2_(config.core.l2),
      arbiter_(config.l2Banks, config.l2BankPenalty,
               config.core.l2.lineBytes, config.cores)
{
    if (config_.cores == 0)
        didt_fatal("a chip needs at least one core");
    if (sources.size() != config_.cores)
        didt_fatal("chip with ", config_.cores, " cores got ",
                   sources.size(), " instruction streams");
    if (!config_.coreCurrentScales.empty() &&
        config_.coreCurrentScales.size() != config_.cores)
        didt_fatal("chip with ", config_.cores, " cores got ",
                   config_.coreCurrentScales.size(), " current scales");

    if (config_.coreCurrentScales.empty()) {
        scales_.assign(config_.cores,
                       1.0 / static_cast<double>(config_.cores));
    } else {
        for (double scale : config_.coreCurrentScales)
            if (!(scale > 0.0))
                didt_fatal("core current scales must be positive");
        scales_ = config_.coreCurrentScales;
    }

    cores_.reserve(config_.cores);
    for (std::size_t i = 0; i < config_.cores; ++i) {
        if (sources[i] == nullptr)
            didt_fatal("chip core ", i, " has no instruction stream");
        cores_.push_back(std::make_unique<Core>(
            config_.core, power_config, *sources[i], l2_, &arbiter_,
            static_cast<unsigned>(i)));
    }
}

bool
Chip::step()
{
    // Warm-up claims land in epoch 0; opening a fresh epoch before the
    // first timed cycle (and every cycle after) keeps each cycle's bank
    // contention isolated.
    arbiter_.beginCycle();
    bool active = false;
    double sum = 0.0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (cores_[i]->step())
            active = true;
        sum += scales_[i] * cores_[i]->lastCurrent();
    }
    lastAggregate_ = sum;
    return active;
}

Cycle
Chip::collectTraces(std::vector<CurrentTrace> &per_core,
                    CurrentTrace &aggregate, Cycle max_cycles)
{
    per_core.resize(cores_.size());
    Cycle executed = 0;
    while (executed < max_cycles) {
        const bool more = step();
        for (std::size_t i = 0; i < cores_.size(); ++i)
            per_core[i].push_back(cores_[i]->lastCurrent());
        aggregate.push_back(lastAggregate_);
        ++executed;
        if (!more)
            break;
    }
    return executed;
}

void
Chip::clearSharedStats()
{
    l2_.clearStats();
    arbiter_.clearStats();
}

} // namespace didt
