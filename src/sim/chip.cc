#include "sim/chip.hh"

#include "util/logging.hh"

namespace didt
{

Chip::Chip(const ChipConfig &config, const PowerModelConfig &power_config,
           std::span<InstructionSource *const> sources)
    : config_(config),
      l2_(config.core.l2),
      arbiter_(config.l2Banks, config.l2BankPenalty,
               config.core.l2.lineBytes, config.cores)
{
    if (config_.cores == 0)
        didt_fatal("a chip needs at least one core");
    if (sources.size() != config_.cores)
        didt_fatal("chip with ", config_.cores, " cores got ",
                   sources.size(), " instruction streams");
    if (!config_.coreCurrentScales.empty() &&
        config_.coreCurrentScales.size() != config_.cores)
        didt_fatal("chip with ", config_.cores, " cores got ",
                   config_.coreCurrentScales.size(), " current scales");

    if (config_.coreCurrentScales.empty()) {
        scales_.assign(config_.cores,
                       1.0 / static_cast<double>(config_.cores));
    } else {
        for (double scale : config_.coreCurrentScales)
            if (!(scale > 0.0))
                didt_fatal("core current scales must be positive");
        scales_ = config_.coreCurrentScales;
    }

    cores_.reserve(config_.cores);
    for (std::size_t i = 0; i < config_.cores; ++i) {
        if (sources[i] == nullptr)
            didt_fatal("chip core ", i, " has no instruction stream");
        cores_.push_back(std::make_unique<Core>(
            config_.core, power_config, *sources[i], l2_, &arbiter_,
            static_cast<unsigned>(i)));
    }
}

bool
Chip::step()
{
    // Warm-up claims land in epoch 0; opening a fresh epoch before the
    // first timed cycle (and every cycle after) keeps each cycle's bank
    // contention isolated.
    arbiter_.beginCycle();
    bool active = false;
    double sum = 0.0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (cores_[i]->step())
            active = true;
        sum += scales_[i] * cores_[i]->lastCurrent();
    }
    lastAggregate_ = sum;
    return active;
}

Cycle
Chip::collectTraces(std::vector<CurrentTrace> &per_core,
                    CurrentTrace &aggregate, Cycle max_cycles)
{
    per_core.resize(cores_.size());
    for (CurrentTrace &trace : per_core)
        reserveTraceCapacity(trace, max_cycles);
    reserveTraceCapacity(aggregate, max_cycles);
    Cycle executed = 0;
    while (executed < max_cycles) {
        const bool more = step();
        for (std::size_t i = 0; i < cores_.size(); ++i)
            per_core[i].push_back(cores_[i]->lastCurrent());
        aggregate.push_back(lastAggregate_);
        ++executed;
        if (!more)
            break;
    }
    return executed;
}

Cycle
Chip::collectTracesSampled(std::vector<CurrentTrace> &per_core,
                           CurrentTrace &aggregate, Cycle max_cycles,
                           const SamplingConfig &sampling)
{
    sampling.validate();
    if (!sampling.enabled())
        return collectTraces(per_core, aggregate, max_cycles);

    const std::size_t n = cores_.size();
    per_core.resize(n);
    for (CurrentTrace &trace : per_core)
        reserveTraceCapacity(trace, max_cycles);
    reserveTraceCapacity(aggregate, max_cycles);

    Cycle total = 0;
    bool more = true;

    // Bracketing detailed windows, one pair per core plus one for the
    // aggregate. The cores skip in lockstep, so every window spans the
    // same cycles and the reconstructions stay phase-aligned; the
    // aggregate is tiled from its own windows, which — the tile
    // selection picking the same source index at every offset — equals
    // the scaled sum of the per-core reconstructions.
    std::vector<std::vector<double>> prev(n), cur(n);
    std::vector<double> prev_agg, cur_agg;

    auto runDetail = [&] {
        for (std::vector<double> &window : cur)
            window.clear();
        cur_agg.clear();
        const Cycle target =
            std::min<Cycle>(sampling.detailCycles, max_cycles - total);
        while (cur_agg.size() < target && more) {
            more = step();
            for (std::size_t i = 0; i < n; ++i)
                cur[i].push_back(cores_[i]->lastCurrent());
            cur_agg.push_back(lastAggregate_);
        }
        total += cur_agg.size();
    };

    auto appendWindows = [&] {
        for (std::size_t i = 0; i < n; ++i) {
            per_core[i].insert(per_core[i].end(), cur[i].begin(),
                               cur[i].end());
            prev[i].swap(cur[i]);
        }
        aggregate.insert(aggregate.end(), cur_agg.begin(), cur_agg.end());
        prev_agg.swap(cur_agg);
    };

    runDetail();
    appendWindows();

    while (more && total < max_cycles) {
        const Cycle gap =
            std::min<Cycle>(sampling.skipCycles, max_cycles - total);
        const Cycle warm = std::min<Cycle>(sampling.warmupCycles, gap);
        for (auto &core : cores_)
            core->fastForward(gap - warm);
        for (Cycle w = 0; w < warm && more; ++w)
            more = step();
        total += gap;

        if (!more || total >= max_cycles) {
            for (std::size_t i = 0; i < n; ++i)
                appendReconstructedGap(prev[i], std::vector<double>(),
                                       gap, cores_[i]->lastCurrent(),
                                       per_core[i]);
            appendReconstructedGap(prev_agg, std::vector<double>(), gap,
                                   lastAggregate_, aggregate);
            break;
        }

        runDetail();
        for (std::size_t i = 0; i < n; ++i)
            appendReconstructedGap(prev[i], cur[i], gap,
                                   cores_[i]->lastCurrent(), per_core[i]);
        appendReconstructedGap(prev_agg, cur_agg, gap, lastAggregate_,
                               aggregate);
        appendWindows();
    }
    return total;
}

void
Chip::clearSharedStats()
{
    l2_.clearStats();
    arbiter_.clearStats();
}

} // namespace didt
