#include "sim/bpred.hh"

#include <bit>

#include "util/logging.hh"

namespace didt
{

namespace
{

/** Saturating 2-bit counter update. */
void
updateCounter(std::uint8_t &counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

bool
counterTaken(std::uint8_t counter)
{
    return counter >= 2;
}

} // namespace

double
BPredStats::mispredictRate() const
{
    if (lookups == 0)
        return 0.0;
    return static_cast<double>(directionMispredicts + targetMispredicts) /
           static_cast<double>(lookups);
}

BranchPredictor::BranchPredictor(const ProcessorConfig &config)
    : config_(config)
{
    auto check_pow2 = [](std::size_t n, const char *what) {
        if (n == 0 || !std::has_single_bit(n))
            didt_fatal(what, " must be a power of two, got ", n);
    };
    check_pow2(config_.bimodEntries, "bimodEntries");
    check_pow2(config_.gshareEntries, "gshareEntries");
    check_pow2(config_.chooserEntries, "chooserEntries");
    check_pow2(config_.btbEntries, "btbEntries");
    if (config_.btbAssociativity == 0 ||
        config_.btbEntries % config_.btbAssociativity != 0)
        didt_fatal("btbEntries must be divisible by btbAssociativity");
    if (config_.gshareHistoryBits == 0 || config_.gshareHistoryBits > 32)
        didt_fatal("gshareHistoryBits must be in [1,32]");
    if (config_.rasEntries == 0)
        didt_fatal("rasEntries must be positive");

    historyMask_ = (std::uint64_t(1) << config_.gshareHistoryBits) - 1;
    reset();
}

void
BranchPredictor::reset()
{
    bimod_.assign(config_.bimodEntries, 1);   // weakly not-taken
    gshare_.assign(config_.gshareEntries, 1);
    chooser_.assign(config_.chooserEntries, 1); // weakly prefer bimod
    btb_.assign(config_.btbEntries, BtbEntry{});
    ras_.assign(config_.rasEntries, 0);
    rasTop_ = 0;
    rasCount_ = 0;
    history_ = 0;
    stats_ = BPredStats{};
}

std::size_t
BranchPredictor::bimodIndex(std::uint64_t pc) const
{
    return (pc >> 2) & (config_.bimodEntries - 1);
}

std::size_t
BranchPredictor::gshareIndex(std::uint64_t pc) const
{
    return ((pc >> 2) ^ history_) & (config_.gshareEntries - 1);
}

std::size_t
BranchPredictor::chooserIndex(std::uint64_t pc) const
{
    return (pc >> 2) & (config_.chooserEntries - 1);
}

BranchPrediction
BranchPredictor::lookupTarget(const Instruction &inst, bool taken_pred)
{
    BranchPrediction pred;
    pred.taken = taken_pred;

    if (inst.isReturn) {
        if (rasCount_ > 0) {
            rasTop_ = (rasTop_ + config_.rasEntries - 1) % config_.rasEntries;
            --rasCount_;
            pred.target = ras_[rasTop_];
            pred.btbHit = true;
        } else {
            ++stats_.rasUnderflows;
        }
        return pred;
    }

    if (inst.isCall) {
        ras_[rasTop_] = inst.pc + 4;
        rasTop_ = (rasTop_ + 1) % config_.rasEntries;
        if (rasCount_ < config_.rasEntries)
            ++rasCount_;
    }

    if (!taken_pred)
        return pred;

    const std::size_t sets = config_.btbEntries / config_.btbAssociativity;
    const std::size_t set = (inst.pc >> 2) & (sets - 1);
    const std::uint64_t tag = inst.pc >> 2;
    for (std::size_t w = 0; w < config_.btbAssociativity; ++w) {
        BtbEntry &entry = btb_[set * config_.btbAssociativity + w];
        if (entry.valid && entry.tag == tag) {
            pred.target = entry.target;
            pred.btbHit = true;
            entry.lru = 0;
            break;
        }
    }
    return pred;
}

void
BranchPredictor::train(const Instruction &inst, bool bimod_taken,
                       bool gshare_taken)
{
    // Chooser trains toward the component that was right (when they
    // disagree), exactly as in SimpleScalar's combining predictor.
    if (bimod_taken != gshare_taken) {
        std::uint8_t &ch = chooser_[chooserIndex(inst.pc)];
        updateCounter(ch, gshare_taken == inst.taken);
    }
    updateCounter(bimod_[bimodIndex(inst.pc)], inst.taken);
    updateCounter(gshare_[gshareIndex(inst.pc)], inst.taken);

    // BTB allocates on taken branches (not returns; those use the RAS).
    if (inst.taken && !inst.isReturn) {
        const std::size_t sets =
            config_.btbEntries / config_.btbAssociativity;
        const std::size_t set = (inst.pc >> 2) & (sets - 1);
        const std::uint64_t tag = inst.pc >> 2;
        // Victim selection: existing entry for this tag, else an
        // invalid way, else the LRU way (largest age).
        BtbEntry *victim = nullptr;
        for (std::size_t w = 0; w < config_.btbAssociativity; ++w) {
            BtbEntry &entry = btb_[set * config_.btbAssociativity + w];
            if (entry.valid && entry.tag == tag) {
                victim = &entry;
                break;
            }
            if (!entry.valid) {
                if (!victim || victim->valid)
                    victim = &entry;
            } else if (!victim ||
                       (victim->valid && entry.lru > victim->lru)) {
                victim = &entry;
            }
        }
        for (std::size_t w = 0; w < config_.btbAssociativity; ++w) {
            BtbEntry &entry = btb_[set * config_.btbAssociativity + w];
            if (entry.lru < 255)
                ++entry.lru;
        }
        victim->valid = true;
        victim->tag = tag;
        victim->target = inst.target;
        victim->lru = 0;
    }

    // Global history records the actual outcome (speculative-history
    // repair is not modeled; the trace-driven update is immediate).
    history_ = ((history_ << 1) | (inst.taken ? 1 : 0)) & historyMask_;
}

BranchPrediction
BranchPredictor::predictAndTrain(const Instruction &inst)
{
    ++stats_.lookups;

    const bool bimod_taken = counterTaken(bimod_[bimodIndex(inst.pc)]);
    const bool gshare_taken = counterTaken(gshare_[gshareIndex(inst.pc)]);
    const bool use_gshare =
        counterTaken(chooser_[chooserIndex(inst.pc)]);
    const bool taken_pred = use_gshare ? gshare_taken : bimod_taken;

    BranchPrediction pred = lookupTarget(inst, taken_pred);
    pred.fromGshare = use_gshare;

    if (pred.taken != inst.taken) {
        ++stats_.directionMispredicts;
        pred.mispredict = true;
    } else if (inst.taken) {
        // Right direction but wrong/unknown target still redirects.
        const bool target_ok = pred.btbHit && pred.target == inst.target;
        if (!target_ok) {
            ++stats_.targetMispredicts;
            pred.mispredict = true;
        }
    }

    train(inst, bimod_taken, gshare_taken);
    return pred;
}

} // namespace didt
