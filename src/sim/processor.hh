/**
 * @file
 * Cycle-level out-of-order processor model (paper Section 3.2).
 *
 * A trace-driven RUU-style machine in the spirit of SimpleScalar's
 * sim-outorder, instrumented with a Wattch-style power model: fetch
 * (with L1I and branch prediction), a multi-stage front end, dispatch
 * into an 80-entry RUU + 40-entry LSQ, dependency-driven issue to the
 * Table-1 functional-unit mix, completion, and in-order commit.
 *
 * Branch mispredictions block fetch until the branch resolves and then
 * charge the redirect penalty; cache misses propagate through the
 * two-level hierarchy. Each cycle produces an activity sample and a
 * current draw, forming the waveform all dI/dt analyses consume.
 *
 * The machine is split along the chip-multiprocessor seam: a Core
 * holds everything private to one hardware context (pipeline, private
 * L1s, predictor, power model, noise state) and runs against a Cache
 * it does *not* own — the unified L2. A Processor is the classic
 * single-core machine: one Core plus its own L2, preserved as the
 * uniprocessor entry point all paper figures use. A Chip (sim/chip.hh)
 * instead shares one L2 (and a bank-conflict arbiter) among N Cores.
 *
 * The two dI/dt actuation hooks the paper's controller uses are
 * exposed directly: stallIssue() suppresses instruction issue to cut
 * current, injectNoops() fills idle functional units with no-ops to
 * raise it.
 */

#ifndef DIDT_SIM_PROCESSOR_HH
#define DIDT_SIM_PROCESSOR_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/fu_pool.hh"
#include "sim/instruction.hh"
#include "sim/power_model.hh"
#include "sim/sampling.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace didt
{

/** Aggregate execution statistics. */
struct ProcessorStats
{
    Cycle cycles = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t committed = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t noopsInjected = 0;
    std::uint64_t issueStallCycles = 0;
    /** Cycles crossed functionally in sampled mode (no detail). */
    std::uint64_t sampledSkipCycles = 0;
    /** Instructions advanced functionally in sampled mode. */
    std::uint64_t sampledSkipInstructions = 0;
    double totalEnergyJ = 0.0; ///< integral of power over time

    /** Committed instructions per cycle. */
    double ipc() const
    {
        return cycles ? static_cast<double>(committed) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** L2 misses per thousand committed instructions. */
    double l2Mpki() const
    {
        return committed ? 1000.0 * static_cast<double>(l2Misses) /
                               static_cast<double>(committed)
                         : 0.0;
    }
};

/** Number of tracked wrong-path activity averages (see kEmaTable). */
constexpr std::size_t kNumActivityEmas = 9;

/**
 * One hardware context of the machine: the full out-of-order pipeline
 * with its private L1s, running against a unified L2 supplied by the
 * owner (a Processor for the single-core machine, a Chip for a CMP).
 *
 * When the L2 is shared, an L2BankArbiter models same-cycle bank
 * conflicts between cores and @p core_id isolates this core's address
 * space (tag bits above every workload footprint), so cores contend
 * for shared-L2 capacity without falsely sharing lines. Core 0 with no
 * arbiter behaves bit-identically to the pre-CMP machine.
 */
class Core
{
  public:
    /**
     * @param config machine parameters (Table 1 defaults)
     * @param power_config power-model budget
     * @param source dynamic instruction stream (must outlive this)
     * @param l2 unified L2 (not owned; must outlive this)
     * @param arbiter shared-L2 bank arbiter (nullptr = uncontended)
     * @param core_id this core's index on its chip (0 for a uniprocessor)
     */
    Core(const ProcessorConfig &config,
         const PowerModelConfig &power_config, InstructionSource &source,
         Cache &l2, L2BankArbiter *arbiter = nullptr,
         unsigned core_id = 0);

    /** Flushes aggregate statistics into the sim.* metrics counters. */
    ~Core();

    /**
     * Advance one cycle.
     * @retval true the machine did or may still do work
     * @retval false the source is exhausted and the pipeline drained
     */
    bool step();

    /** Suppress instruction issue while @p stall (dI/dt low actuation). */
    void setStallIssue(bool stall) { stallIssue_ = stall; }

    /** Fill idle FUs with no-ops while @p inject (dI/dt high actuation). */
    void setInjectNoops(bool inject) { injectNoops_ = inject; }

    /** Current drawn during the most recent cycle. */
    Amp lastCurrent() const { return lastCurrent_; }

    /** Activity sample of the most recent cycle. */
    const ActivitySample &lastActivity() const { return lastActivity_; }

    /** True when an L2 miss (to memory) completed in the last cycle. */
    bool lastCycleHadL2Miss() const { return lastCycleL2Miss_; }

    /** Aggregate statistics. */
    const ProcessorStats &stats() const { return stats_; }

    /** Write a gem5-style aligned dump of all counters. */
    void dumpStats(std::ostream &os) const;

    /** Branch predictor statistics. */
    const BPredStats &bpredStats() const { return bpred_.stats(); }

    /** The machine configuration. */
    const ProcessorConfig &config() const { return config_; }

    /** The power model in use. */
    const PowerModel &powerModel() const { return power_; }

    /** This core's index on its chip. */
    unsigned coreId() const { return coreId_; }

    /**
     * Run until @p max_cycles elapse or the source is exhausted,
     * recording per-cycle current into @p trace (appended).
     * @return number of cycles executed
     */
    Cycle collectTrace(CurrentTrace &trace, Cycle max_cycles);

    /**
     * Sampled trace collection: alternate detailed windows with
     * fast-forwarded segments whose current is reconstructed from the
     * bracketing windows (see sim/sampling.hh). A disabled @p sampling
     * (skipCycles == 0) runs plain collectTrace and is byte-identical
     * to it. Throws std::invalid_argument on contradictory sampling
     * parameters.
     * @return virtual cycles covered (== samples appended)
     */
    Cycle collectTraceSampled(CurrentTrace &trace, Cycle max_cycles,
                              const SamplingConfig &sampling);

    /**
     * Cross @p cycles without detailed simulation: stream the
     * estimated number of instructions (detailed IPC so far times the
     * skipped cycles) through the caches and branch predictor to keep
     * them warm, then jump the clock. Pending in-flight completions
     * all land inside the skip; outstanding misses are considered
     * retired. Used by the sampling mode between detailed windows.
     * @return instructions advanced
     */
    std::uint64_t fastForward(Cycle cycles);

    /**
     * Architectural warm-up: stream @p instructions through the
     * caches and branch predictor without timing, then clear the
     * warm-up's statistics. Models SimPoint-style warm simulation
     * starts; call before the timed run.
     */
    void warmup(InstructionSource &warm_source, std::uint64_t instructions);

    /**
     * Touch explicit data/code line addresses through the hierarchy
     * before the timed run (full-footprint warm start). Combine with
     * warmup() for predictor training.
     */
    void warmupFootprint(std::span<const std::uint64_t> data_lines,
                         std::span<const std::uint64_t> code_lines);

  private:
    static constexpr std::uint64_t kUnknownReady = ~std::uint64_t(0);
    static constexpr std::size_t kSeqRingSize = 1024;

    struct SeqSlot
    {
        std::uint64_t seq = ~std::uint64_t(0);
        Cycle ready = 0;
    };

    void doCommit();
    void doComplete();
    void doIssue();
    void doDispatch();
    void doFetch();
    bool depReady(std::uint64_t seq, std::uint32_t dep1,
                  std::uint32_t dep2) const;
    Cycle depReadyCycle(std::uint64_t producer_seq) const;

    ProcessorConfig config_;
    PowerModel power_;
    InstructionSource &source_;

    BranchPredictor bpred_;
    Cache &l2_; ///< unified L2, owned by the Processor or Chip
    MemoryHierarchy icache_;
    MemoryHierarchy dcache_;
    FuPool fus_;

    unsigned coreId_;
    /** Per-core address-space offset (tag bits only; set bits
     *  untouched), so cores never falsely share cache lines. Zero for
     *  core 0: the uniprocessor address stream is unchanged. */
    std::uint64_t addrBase_;

    /**
     * In-flight window (RUU) as a preallocated structure-of-arrays
     * ring: capacity is ruuSize rounded up to a power of two (indexing
     * is head + logical offset masked), occupancy is tracked in
     * winCount_, and each pipeline stage walks only the parallel
     * arrays it touches. Logical front-to-back order — and therefore
     * every commit, issue, and completion decision — is exactly the
     * old deque walk, so traces stay bit-identical; the win is zero
     * steady-state allocation and contiguous stage scans.
     */
    std::size_t winMask_ = 0; ///< ring capacity - 1 (capacity is pow2)
    std::size_t winHead_ = 0; ///< physical slot of the oldest entry
    std::size_t winCount_ = 0;
    std::vector<std::uint64_t> winSeq_;
    std::vector<OpClass> winOp_;
    std::vector<std::uint32_t> winDep1_;
    std::vector<std::uint32_t> winDep2_;
    std::vector<std::uint64_t> winAddr_;
    std::vector<std::uint8_t> winIssued_;
    std::vector<std::uint8_t> winComplete_;
    std::vector<std::uint8_t> winInLsq_;
    std::vector<Cycle> winCompleteCycle_;
    /** Entries issued but not yet complete; doComplete() skips its
     *  window scan entirely when zero (exact: integer occupancy). */
    std::size_t inFlight_ = 0;

    /**
     * Front-end queue as the same SoA ring shape. Only the fields
     * dispatch needs survive fetch (op, deps, address, seq, ready
     * cycle) — the branch-predictor fields are consumed at fetch.
     */
    std::size_t feMask_ = 0;
    std::size_t feHead_ = 0;
    std::size_t feCount_ = 0;
    std::vector<OpClass> feOp_;
    std::vector<std::uint32_t> feDep1_;
    std::vector<std::uint32_t> feDep2_;
    std::vector<std::uint64_t> feAddr_;
    std::vector<std::uint64_t> feSeq_;
    std::vector<Cycle> feReady_;

    std::size_t lsqOccupancy_ = 0;

    std::vector<SeqSlot> seqRing_;
    std::uint64_t nextSeq_ = 0;

    /** Outstanding-miss (MSHR) tracking: count per completion cycle. */
    std::vector<std::uint16_t> missRetireRing_;
    std::size_t outstandingMisses_ = 0;

    Cycle now_ = 0;
    bool sourceExhausted_ = false;
    Cycle fetchResumeCycle_ = 0;       ///< fetch blocked until this cycle
    Cycle branchRecoveryUntil_ = 0;    ///< wrong-path fetch until here
    std::uint64_t blockingBranchSeq_ = ~std::uint64_t(0);
    bool fetchBlockedOnBranch_ = false;

    bool stallIssue_ = false;
    bool injectNoops_ = false;

    /**
     * Moving averages of issue-side activity, used to charge
     * wrong-path execution power during misprediction recovery.
     * Slot assignments live in the structure->average table
     * (kEmaTable in processor.cc) driving both the tracking and the
     * recovery boost.
     */
    std::array<double, kNumActivityEmas> emas_{};

    ActivitySample lastActivity_{};
    Amp lastCurrent_ = 0.0;
    Rng noiseRng_; ///< data-dependent switching noise
    std::vector<Watt> spreadRing_;  ///< pipelined-power spreading FIFO
    std::size_t spreadHead_ = 0;
    bool lastCycleL2Miss_ = false;
    std::uint64_t prevL2Misses_ = 0;

    ProcessorStats stats_;
};

/**
 * The classic single-core machine: one Core plus its own unified L2.
 * Thin owning wrapper kept as the uniprocessor entry point — every
 * call forwards to the Core, so the Processor and a 1-core Chip run
 * the exact same code path.
 */
class Processor
{
  public:
    /**
     * @param config machine parameters (Table 1 defaults)
     * @param power_config power-model budget
     * @param source dynamic instruction stream (must outlive this)
     */
    Processor(const ProcessorConfig &config,
              const PowerModelConfig &power_config,
              InstructionSource &source)
        : l2_(config.l2), core_(config, power_config, source, l2_)
    {
    }

    /** @copydoc Core::step */
    bool step() { return core_.step(); }

    /** @copydoc Core::setStallIssue */
    void setStallIssue(bool stall) { core_.setStallIssue(stall); }

    /** @copydoc Core::setInjectNoops */
    void setInjectNoops(bool inject) { core_.setInjectNoops(inject); }

    /** @copydoc Core::lastCurrent */
    Amp lastCurrent() const { return core_.lastCurrent(); }

    /** @copydoc Core::lastActivity */
    const ActivitySample &lastActivity() const
    {
        return core_.lastActivity();
    }

    /** @copydoc Core::lastCycleHadL2Miss */
    bool lastCycleHadL2Miss() const { return core_.lastCycleHadL2Miss(); }

    /** @copydoc Core::stats */
    const ProcessorStats &stats() const { return core_.stats(); }

    /** @copydoc Core::dumpStats */
    void dumpStats(std::ostream &os) const { core_.dumpStats(os); }

    /** @copydoc Core::bpredStats */
    const BPredStats &bpredStats() const { return core_.bpredStats(); }

    /** @copydoc Core::config */
    const ProcessorConfig &config() const { return core_.config(); }

    /** @copydoc Core::powerModel */
    const PowerModel &powerModel() const { return core_.powerModel(); }

    /** @copydoc Core::collectTrace */
    Cycle collectTrace(CurrentTrace &trace, Cycle max_cycles)
    {
        return core_.collectTrace(trace, max_cycles);
    }

    /** @copydoc Core::collectTraceSampled */
    Cycle collectTraceSampled(CurrentTrace &trace, Cycle max_cycles,
                              const SamplingConfig &sampling)
    {
        return core_.collectTraceSampled(trace, max_cycles, sampling);
    }

    /** @copydoc Core::warmup */
    void warmup(InstructionSource &warm_source,
                std::uint64_t instructions)
    {
        core_.warmup(warm_source, instructions);
    }

    /** @copydoc Core::warmupFootprint */
    void warmupFootprint(std::span<const std::uint64_t> data_lines,
                         std::span<const std::uint64_t> code_lines)
    {
        core_.warmupFootprint(data_lines, code_lines);
    }

    /** The underlying core. */
    Core &core() { return core_; }

    /** The underlying core. */
    const Core &core() const { return core_; }

  private:
    Cache l2_;
    Core core_;
};

} // namespace didt

#endif // DIDT_SIM_PROCESSOR_HH
