/**
 * @file
 * The dynamic instruction record consumed by the processor model.
 *
 * Instructions are produced by a workload source (the synthetic SPEC
 * substitute) carrying the architectural information the pipeline
 * needs: opcode class, register dependencies expressed as distances to
 * earlier in-flight producers, program counter, and, for memory and
 * branch operations, the effective address / actual outcome.
 */

#ifndef DIDT_SIM_INSTRUCTION_HH
#define DIDT_SIM_INSTRUCTION_HH

#include <cstdint>

namespace didt
{

/** Operation classes recognized by the pipeline and power model. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    Load,
    Store,
    Branch,
    Nop,
};

/** True for loads and stores. */
inline bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** True for floating-point operation classes. */
inline bool
isFpOp(OpClass op)
{
    return op == OpClass::FpAlu || op == OpClass::FpMult ||
           op == OpClass::FpDiv;
}

/** One dynamic instruction. */
struct Instruction
{
    /** Operation class. */
    OpClass op = OpClass::IntAlu;

    /** Program counter (byte address of the instruction). */
    std::uint64_t pc = 0;

    /**
     * Input dependencies as distances (in dynamic instructions) to the
     * producing instruction; 0 means no dependency. A distance larger
     * than the in-flight window means the value is long since ready.
     */
    std::uint32_t dep1 = 0;

    /** Second input dependency distance; 0 means none. */
    std::uint32_t dep2 = 0;

    /** Effective address for loads/stores. */
    std::uint64_t address = 0;

    /** For branches: the actual direction. */
    bool taken = false;

    /** For branches: the actual target (for BTB training). */
    std::uint64_t target = 0;

    /** For branches: call/return markers driving the RAS. */
    bool isCall = false;

    /** Return instruction marker. */
    bool isReturn = false;
};

/**
 * Abstract producer of the dynamic instruction stream.
 *
 * The processor pulls one instruction at a time; a source returning
 * false signals end of stream and ends the simulation after drain.
 */
class InstructionSource
{
  public:
    virtual ~InstructionSource() = default;

    /**
     * Produce the next instruction.
     * @param out receives the instruction when available
     * @retval true an instruction was produced
     * @retval false the stream is exhausted
     */
    virtual bool next(Instruction &out) = 0;

    /**
     * Advance the stream past @p count instructions without the
     * caller observing them (sampled-simulation fast-forward,
     * DESIGN.md §15).
     * @return instructions actually skipped — less than @p count only
     *         when the stream is exhausted
     *
     * The default draws and discards; sources whose position is cheap
     * arithmetic (e.g. the synthetic generator) should override it.
     */
    virtual std::uint64_t skipInstructions(std::uint64_t count)
    {
        Instruction scratch;
        std::uint64_t skipped = 0;
        while (skipped < count && next(scratch))
            ++skipped;
        return skipped;
    }
};

} // namespace didt

#endif // DIDT_SIM_INSTRUCTION_HH
