/**
 * @file
 * Functional-unit pool (paper Table 1 execution resources).
 *
 * Tracks per-class unit availability: ALUs are fully pipelined (busy
 * one cycle per issue); multipliers are pipelined; dividers occupy
 * their unit for the full operation latency.
 */

#ifndef DIDT_SIM_FU_POOL_HH
#define DIDT_SIM_FU_POOL_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/instruction.hh"
#include "util/types.hh"

namespace didt
{

/** Functional-unit classes (mult and div share physical units). */
enum class FuClass : std::uint8_t
{
    IntAlu,
    IntMultDiv,
    FpAlu,
    FpMultDiv,
    MemPort,
};

/** Map an operation class to the unit class that executes it. */
FuClass fuClassFor(OpClass op);

/** Availability tracker for all functional units. */
class FuPool
{
  public:
    /** Size the pool from the processor configuration. */
    explicit FuPool(const ProcessorConfig &config);

    /**
     * Try to claim a unit of @p cls at @p now, holding it busy for
     * @p busy_cycles (1 for pipelined units, the full latency for
     * unpipelined dividers).
     * @retval true a unit was claimed
     */
    bool tryIssue(FuClass cls, Cycle now, Cycle busy_cycles);

    /**
     * Roll back a tryIssue() made this cycle: releases one unit whose
     * reservation matches (now + busy_cycles). Panics if no such
     * reservation exists.
     */
    void undoIssue(FuClass cls, Cycle now, Cycle busy_cycles = 1);

    /** Number of units of @p cls currently busy at @p now. */
    std::size_t busyCount(FuClass cls, Cycle now) const;

    /** Total units of @p cls. */
    std::size_t unitCount(FuClass cls) const;

    /** Release all units (between runs). */
    void reset();

  private:
    /** busyUntil_[class][unit]: first cycle the unit is free again. */
    std::vector<std::vector<Cycle>> busyUntil_;
};

/**
 * Execution latency of @p op per the configuration; memory ops return
 * only the non-memory part (address generation) — cache latency is
 * added by the pipeline from the hierarchy model.
 */
std::size_t executeLatency(const ProcessorConfig &config, OpClass op);

/** True when the op holds its unit for the whole latency (dividers). */
bool isUnpipelined(OpClass op);

} // namespace didt

#endif // DIDT_SIM_FU_POOL_HH
