#include "sim/power_model.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/simd.hh"

namespace didt
{

PowerModel::PowerModel(const PowerModelConfig &power,
                       const ProcessorConfig &proc)
    : config_(power), proc_(proc), vdd_(proc.nominalVoltage)
{
    if (vdd_ <= 0.0)
        didt_fatal("nominal voltage must be positive, got ", vdd_);
    if (config_.idleFraction < 0.0 || config_.idleFraction >= 1.0)
        didt_fatal("idleFraction must be in [0,1), got ",
                   config_.idleFraction);
    idlePower_ = cyclePower(ActivitySample{});
    Watt peak = config_.leakage;
    for (Watt w : config_.peak)
        peak += w;
    peakPower_ = peak;
}

Watt
PowerModel::gated(PowerUnit unit, double utilization) const
{
    const Watt peak = config_.peak[static_cast<std::size_t>(unit)];
    const double util = std::clamp(utilization, 0.0, 1.0);
    switch (config_.gating) {
      case ClockGating::None:
        return peak;
      case ClockGating::AllOrNothing:
        return util > 0.0 ? peak : 0.0;
      case ClockGating::Linear:
        return peak * util;
      case ClockGating::LinearIdle:
        return peak * (config_.idleFraction +
                       (1.0 - config_.idleFraction) * util);
    }
    didt_panic("unknown gating style");
}

std::array<Watt, kNumPowerUnits>
PowerModel::unitPower(const ActivitySample &a) const
{
    auto ratio = [](std::size_t used, std::size_t ports) {
        if (ports == 0)
            return 0.0;
        return static_cast<double>(used) / static_cast<double>(ports);
    };

    // Per-structure utilizations in PowerUnit order (Clock excluded:
    // it is derived from the other structures' power below). Clamped
    // to [0, 1] here exactly as gated() clamps, so both gating paths
    // see identical inputs.
    constexpr std::size_t kGatedUnits = kNumPowerUnits - 1;
    std::array<double, kGatedUnits> util;
    util[static_cast<std::size_t>(PowerUnit::Fetch)] =
        ratio(a.fetched, proc_.fetchWidth);
    util[static_cast<std::size_t>(PowerUnit::Bpred)] =
        a.bpredLookups > 0 ? 1.0 : 0.0;
    util[static_cast<std::size_t>(PowerUnit::Decode)] =
        ratio(a.decoded, proc_.decodeWidth);

    // Window power has a wakeup component proportional to occupancy
    // and a selection component proportional to issue activity.
    const std::size_t issued = a.issuedIntAlu + a.issuedIntMult +
                               a.issuedFpAlu + a.issuedFpMult;
    const std::size_t total_units = proc_.intAluCount + proc_.intMultCount +
                                    proc_.fpAluCount + proc_.fpMultCount;
    util[static_cast<std::size_t>(PowerUnit::Window)] =
        0.5 * ratio(a.windowOccupancy, proc_.ruuSize) +
        0.5 * ratio(issued, total_units);

    const std::size_t reg_ports = 2 * proc_.decodeWidth + proc_.commitWidth;
    util[static_cast<std::size_t>(PowerUnit::RegFile)] =
        ratio(a.regReads + a.regWrites, reg_ports);

    util[static_cast<std::size_t>(PowerUnit::IntAlu)] =
        ratio(a.issuedIntAlu, proc_.intAluCount);
    util[static_cast<std::size_t>(PowerUnit::IntMult)] =
        ratio(a.issuedIntMult, proc_.intMultCount);
    util[static_cast<std::size_t>(PowerUnit::FpAlu)] =
        ratio(a.issuedFpAlu, proc_.fpAluCount);
    util[static_cast<std::size_t>(PowerUnit::FpMult)] =
        ratio(a.issuedFpMult, proc_.fpMultCount);

    util[static_cast<std::size_t>(PowerUnit::Lsq)] =
        ratio(a.lsqOps, proc_.memPortCount);
    util[static_cast<std::size_t>(PowerUnit::DCache)] =
        ratio(a.dcacheAccesses, proc_.memPortCount);
    util[static_cast<std::size_t>(PowerUnit::L2)] =
        a.l2Accesses > 0 ? 1.0 : 0.0;

    for (double &u : util)
        u = std::clamp(u, 0.0, 1.0);

    std::array<Watt, kNumPowerUnits> out{};
    if (config_.gating == ClockGating::LinearIdle) {
        // The default Wattch cc3 style applies one identical affine
        // formula to every structure — the per-structure outputs are
        // independent, so this vectorizes through the kernel table
        // (bit-for-bit equal to the scalar gated() chain).
        simd::kernels().gatedLinearIdle(config_.peak.data(), util.data(),
                                        kGatedUnits, config_.idleFraction,
                                        out.data());
    } else {
        for (std::size_t u = 0; u < kGatedUnits; ++u)
            out[u] = gated(static_cast<PowerUnit>(u), util[u]);
    }

    // Clock power: an ungated fraction plus a gated part tracking core
    // activity (average utilization of the other structures).
    double activity_sum = 0.0;
    const Watt clock_peak =
        config_.peak[static_cast<std::size_t>(PowerUnit::Clock)];
    Watt others_peak = 0.0;
    for (std::size_t u = 0; u < kNumPowerUnits; ++u) {
        if (u == static_cast<std::size_t>(PowerUnit::Clock))
            continue;
        activity_sum += out[u];
        others_peak += config_.peak[u];
    }
    const double core_activity =
        others_peak > 0.0 ? activity_sum / others_peak : 0.0;
    out[static_cast<std::size_t>(PowerUnit::Clock)] =
        clock_peak * (config_.clockUngatedFraction +
                      (1.0 - config_.clockUngatedFraction) * core_activity);
    return out;
}

Watt
PowerModel::cyclePower(const ActivitySample &activity) const
{
    const auto units = unitPower(activity);
    Watt total = config_.leakage;
    for (Watt w : units)
        total += w;
    return total;
}

Amp
PowerModel::cycleCurrent(const ActivitySample &activity) const
{
    return cyclePower(activity) / vdd_;
}

const char *
powerUnitName(PowerUnit unit)
{
    switch (unit) {
      case PowerUnit::Fetch: return "fetch";
      case PowerUnit::Bpred: return "bpred";
      case PowerUnit::Decode: return "decode";
      case PowerUnit::Window: return "window";
      case PowerUnit::RegFile: return "regfile";
      case PowerUnit::IntAlu: return "intalu";
      case PowerUnit::IntMult: return "intmult";
      case PowerUnit::FpAlu: return "fpalu";
      case PowerUnit::FpMult: return "fpmult";
      case PowerUnit::Lsq: return "lsq";
      case PowerUnit::DCache: return "dcache";
      case PowerUnit::L2: return "l2";
      case PowerUnit::Clock: return "clock";
      case PowerUnit::NumUnits: break;
    }
    didt_panic("unknown power unit");
}

} // namespace didt
