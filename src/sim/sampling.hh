/**
 * @file
 * SimPoint-style sampled trace collection (paper Section 4 context;
 * see DESIGN.md section 15).
 *
 * A sampled run alternates detailed windows — full cycle-level
 * simulation producing real current samples — with skipped segments
 * the machine crosses functionally: the instruction stream still
 * flows through the caches and branch predictor (so microarchitectural
 * state stays warm, as in SimPoint's warm fast-forward), but no
 * pipeline timing or per-cycle power is computed. The tail of each
 * skipped segment is re-simulated in detail with the samples discarded
 * so the next window starts from a refilled pipeline.
 *
 * Skipped segments still occupy their cycles in the output trace:
 * their current is reconstructed from cyclic tiles of the bracketing
 * detailed windows, which preserves the cycle-scale spectral content
 * the wavelet analyses measure. The error this
 * introduces is bounded by verify::Oracle::checkSampling
 * (resonance-band variance and threshold-crossing tolerances).
 */

#ifndef DIDT_SIM_SAMPLING_HH
#define DIDT_SIM_SAMPLING_HH

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/types.hh"

namespace didt
{

/** Parameters of a sampled (detail + fast-forward) simulation. */
struct SamplingConfig
{
    /** Cycles simulated in full detail per window. */
    Cycle detailCycles = 0;

    /**
     * Cycles skipped between detailed windows. 0 disables sampling:
     * the run collapses to plain full-detail collection and stays
     * byte-identical to the unsampled path.
     */
    Cycle skipCycles = 0;

    /**
     * Trailing cycles of each skipped segment re-simulated in detail
     * (samples discarded) so the next window starts from a refilled
     * pipeline, not a cold one. Clamped to skipCycles.
     */
    Cycle warmupCycles = 512;

    /** True when sampling is active. */
    bool enabled() const { return skipCycles > 0; }

    /**
     * Functional-warming budget per skipped segment, in instructions.
     * The synthetic workloads are stationary within a phase, so the
     * cache/predictor state after a long skip is statistically the
     * state after this many adjacent instructions; the stream position
     * is advanced arithmetically (InstructionSource::skipInstructions)
     * and only this tail is executed functionally. Bounds fast-forward
     * cost per segment to O(budget) regardless of skip length;
     * verify::Oracle::checkSampling gates the resulting error.
     */
    static constexpr std::uint64_t kFunctionalWarmInsts = 4096;

    /**
     * Reject contradictory parameters. A zero detail window with a
     * nonzero skip would produce a trace with no simulated content at
     * all; a warm-up longer than the skip would re-simulate more than
     * it skips. Throws std::invalid_argument (campaign cells surface
     * this as a per-cell error, never a process exit).
     */
    void validate() const
    {
        if (!enabled())
            return;
        if (detailCycles == 0)
            throw std::invalid_argument(
                "sampling: detailCycles must be positive when "
                "skipCycles > 0");
        if (warmupCycles > skipCycles)
            throw std::invalid_argument(
                "sampling: warmupCycles must not exceed skipCycles");
    }
};

/**
 * Reserve capacity for @p max_cycles more samples in @p trace, capped
 * so the campaign drivers' generous safety cap (64x the instruction
 * count) does not balloon memory: typical runs retire a few hundred
 * thousand cycles, so growth beyond the cap falls back to amortized
 * doubling.
 */
inline void
reserveTraceCapacity(std::vector<double> &trace, Cycle max_cycles)
{
    constexpr std::size_t kReserveCap = std::size_t{1} << 21;
    const std::size_t want =
        trace.size() +
        static_cast<std::size_t>(
            std::min<Cycle>(max_cycles, kReserveCap));
    if (trace.capacity() < want)
        trace.reserve(want);
}

/**
 * Append the reconstruction of one skipped segment of @p gap cycles to
 * @p out: cyclic tiles of the bracketing detailed windows (@p prev
 * before the gap, @p next after it), alternating tile-by-tile between
 * the two sources. Tiling preserves the windows' cycle-scale
 * structure — and therefore their wavelet-band content — and because
 * every reconstructed sample is a real simulated sample, the marginal
 * current distribution (and with it the threshold-crossing statistics
 * the oracle gates) is the mixture of the two windows' distributions;
 * alternating doubles the number of windows each gap draws from,
 * halving the estimator variance a single unlucky window would
 * otherwise imprint on the whole gap. A crossfade would instead
 * average the tiles, shrinking the distribution's tails and
 * systematically under-counting voltage emergencies. An empty @p next
 * (end of run) tiles @p prev alone; if both are empty the segment is
 * filled with @p fallback.
 */
inline void
appendReconstructedGap(const std::vector<double> &prev,
                       const std::vector<double> &next, Cycle gap,
                       double fallback, std::vector<double> &out)
{
    if (prev.empty() && next.empty()) {
        out.insert(out.end(), static_cast<std::size_t>(gap), fallback);
        return;
    }
    const std::size_t tile =
        std::min(prev.empty() ? next.size() : prev.size(),
                 next.empty() ? prev.size() : next.size());
    for (Cycle j = 0; j < gap; ++j) {
        const bool odd = (static_cast<std::size_t>(j) / tile) % 2 != 0;
        const std::vector<double> &pick =
            odd ? (next.empty() ? prev : next)
                : (prev.empty() ? next : prev);
        out.push_back(
            pick[static_cast<std::size_t>(j) % pick.size()]);
    }
}

} // namespace didt

#endif // DIDT_SIM_SAMPLING_HH
