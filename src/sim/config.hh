/**
 * @file
 * Processor configuration (paper Table 1).
 *
 * Models the 3.0 GHz Alpha-21264-like machine the paper simulates with
 * a modified Wattch/SimpleScalar: 4-wide fetch/decode, deep front end
 * with a 12-cycle branch penalty, 80-entry RUU + 40-entry LSQ,
 * the Table-1 functional-unit mix, and a two-level cache hierarchy.
 */

#ifndef DIDT_SIM_CONFIG_HH
#define DIDT_SIM_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "util/types.hh"

namespace didt
{

/** Parameters of one cache level. */
struct CacheConfig
{
    std::size_t sizeBytes;    ///< total capacity
    std::size_t associativity;///< ways per set
    std::size_t lineBytes;    ///< bytes per line
    std::size_t latency;      ///< access latency in cycles
};

/** Full processor configuration with Table-1 defaults. */
struct ProcessorConfig
{
    // --- Execution core -------------------------------------------------
    Hertz clockHz = 3.0e9;          ///< clock rate (3.0 GHz)
    Volt nominalVoltage = 1.0;      ///< Vdd (1.0 V)
    std::size_t ruuSize = 80;       ///< instruction window (RUU entries)
    std::size_t lsqSize = 40;       ///< load/store queue entries
    std::size_t intAluCount = 4;    ///< integer ALUs
    std::size_t intMultCount = 1;   ///< integer multiply/divide units
    std::size_t fpAluCount = 2;     ///< floating-point ALUs
    std::size_t fpMultCount = 1;    ///< FP multiply/divide units
    std::size_t memPortCount = 2;   ///< cache ports

    // --- Front end -------------------------------------------------------
    std::size_t fetchWidth = 4;     ///< instructions fetched per cycle
    std::size_t decodeWidth = 4;    ///< instructions decoded per cycle
    std::size_t commitWidth = 4;    ///< instructions committed per cycle
    std::size_t branchPenalty = 12; ///< misprediction redirect penalty
    std::size_t frontEndDepth = 6;  ///< fetch-to-dispatch pipeline stages

    // --- Branch prediction -------------------------------------------------
    std::size_t chooserEntries = 4096; ///< combined-predictor chooser (4K)
    std::size_t bimodEntries = 4096;   ///< bimodal table (4K)
    std::size_t gshareEntries = 4096;  ///< gshare table (4K)
    std::size_t gshareHistoryBits = 12;///< gshare global history bits
    std::size_t btbEntries = 1024;     ///< BTB entries (1K)
    std::size_t btbAssociativity = 2;  ///< BTB ways
    std::size_t rasEntries = 32;       ///< return address stack

    // --- Memory hierarchy ----------------------------------------------
    CacheConfig l1i{64 * 1024, 2, 64, 3};      ///< 64KB 2-way, 3 cycles
    CacheConfig l1d{64 * 1024, 2, 64, 3};      ///< 64KB 2-way, 3 cycles
    CacheConfig l2{2 * 1024 * 1024, 4, 64, 16};///< 2MB 4-way, 16 cycles
    std::size_t memoryLatency = 250;           ///< main memory, cycles
    std::size_t mshrCount = 8;                 ///< outstanding L1D misses

    // --- Execution latencies (cycles, issue-to-complete) ------------------
    std::size_t intAluLatency = 1;
    std::size_t intMultLatency = 3;
    std::size_t intDivLatency = 20;
    std::size_t fpAluLatency = 2;
    std::size_t fpMultLatency = 4;
    std::size_t fpDivLatency = 12;

    /** Pretty-print the configuration in Table-1 layout. */
    void print(std::ostream &os) const;
};

} // namespace didt

#endif // DIDT_SIM_CONFIG_HH
