/**
 * @file
 * Combined branch predictor (paper Table 1).
 *
 * A SimpleScalar-style "comb" predictor: a 4K-entry bimodal chooser
 * selects between a 4K-entry bimodal table and a 4K-entry gshare with
 * 12 bits of global history. Targets come from a 1K-entry 2-way BTB;
 * returns from a 32-entry return address stack.
 */

#ifndef DIDT_SIM_BPRED_HH
#define DIDT_SIM_BPRED_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/instruction.hh"

namespace didt
{

/** Prediction produced for one branch. */
struct BranchPrediction
{
    bool taken = false;          ///< predicted direction
    std::uint64_t target = 0;    ///< predicted target (0 if BTB miss)
    bool btbHit = false;         ///< target came from BTB/RAS
    bool fromGshare = false;     ///< chooser picked the gshare component
    bool mispredict = false;     ///< wrong direction or wrong target
};

/** Statistics accumulated by the predictor. */
struct BPredStats
{
    std::uint64_t lookups = 0;
    std::uint64_t directionMispredicts = 0;
    std::uint64_t targetMispredicts = 0;
    std::uint64_t rasUnderflows = 0;

    /** Fraction of lookups with a wrong direction or target. */
    double mispredictRate() const;
};

/** The combined predictor with BTB and RAS. */
class BranchPredictor
{
  public:
    /** Build tables sized per @p config (entry counts must be powers
     *  of two; fatal otherwise). */
    explicit BranchPredictor(const ProcessorConfig &config);

    /**
     * Predict the branch at @p inst and immediately train with the
     * actual outcome carried by the instruction (trace-driven update).
     * The prediction reflects table state *before* training.
     */
    BranchPrediction predictAndTrain(const Instruction &inst);

    /** Accumulated statistics. */
    const BPredStats &stats() const { return stats_; }

    /** Reset tables, history, and statistics. */
    void reset();

    /** Clear statistics, keeping trained table state (post-warm-up). */
    void clearStats() { stats_ = BPredStats{}; }

  private:
    struct BtbEntry
    {
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        bool valid = false;
        std::uint8_t lru = 0;
    };

    std::size_t bimodIndex(std::uint64_t pc) const;
    std::size_t gshareIndex(std::uint64_t pc) const;
    std::size_t chooserIndex(std::uint64_t pc) const;

    BranchPrediction lookupTarget(const Instruction &inst, bool taken_pred);
    void train(const Instruction &inst, bool bimod_taken, bool gshare_taken);

    ProcessorConfig config_;
    std::vector<std::uint8_t> bimod_;   ///< 2-bit counters
    std::vector<std::uint8_t> gshare_;  ///< 2-bit counters
    std::vector<std::uint8_t> chooser_; ///< 2-bit: >=2 selects gshare
    std::vector<BtbEntry> btb_;         ///< sets x ways flattened
    std::vector<std::uint64_t> ras_;
    std::size_t rasTop_ = 0;
    std::size_t rasCount_ = 0;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
    BPredStats stats_;
};

} // namespace didt

#endif // DIDT_SIM_BPRED_HH
