#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace didt
{

namespace
{

// The level is read on every warn/inform from worker threads while a
// tool's main thread may still be parsing options; an atomic keeps
// that race benign. The sink mutex keeps concurrent messages from
// interleaving mid-line.
std::atomic<LogLevel> globalLevel{LogLevel::Normal};

std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "quiet")
        return LogLevel::Quiet;
    if (name == "normal")
        return LogLevel::Normal;
    if (name == "verbose")
        return LogLevel::Verbose;
    didt_fatal("unknown log level '", name,
               "' (expected quiet, normal, or verbose)");
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet: return "quiet";
      case LogLevel::Normal: return "normal";
      case LogLevel::Verbose: return "verbose";
    }
    return "unknown";
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() != LogLevel::Quiet) {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
    }
}

void
informImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Verbose) {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "info: %s\n", msg.c_str());
    }
}

} // namespace detail

} // namespace didt
