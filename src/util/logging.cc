#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace didt
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel != LogLevel::Quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (globalLevel == LogLevel::Verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace didt
