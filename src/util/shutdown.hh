/**
 * @file
 * Graceful-shutdown signal plumbing shared by the long-running tools.
 *
 * installShutdownHandler() routes SIGINT and SIGTERM into a process
 * flag plus a self-pipe, using only async-signal-safe operations:
 *
 *  - pollers (the didt_serve main loop) watch shutdownWakeFd() and
 *    begin their drain when it becomes readable;
 *  - workers (didt_campaign's executor) poll shutdownFlag() as the
 *    cooperative cancellation flag, so cells that have not started are
 *    marked interrupted instead of evaluated.
 *
 * A second signal while a drain is in progress restores the default
 * disposition, so a third delivery kills the process — the operator
 * always has an escalation path past a wedged drain.
 */

#ifndef DIDT_UTIL_SHUTDOWN_HH
#define DIDT_UTIL_SHUTDOWN_HH

#include <atomic>

namespace didt
{

/**
 * Install the SIGINT/SIGTERM handler (idempotent). Must be called
 * from the main thread before threads that should observe shutdown.
 */
void installShutdownHandler();

/** True once a shutdown signal has been delivered. */
bool shutdownRequested();

/** The flag itself, for APIs taking an atomic (ExecutionHooks). */
const std::atomic<bool> &shutdownFlag();

/**
 * Read end of the shutdown self-pipe: becomes readable on the first
 * signal and stays readable. -1 before installShutdownHandler().
 */
int shutdownWakeFd();

} // namespace didt

#endif // DIDT_UTIL_SHUTDOWN_HH
