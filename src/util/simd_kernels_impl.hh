/**
 * @file
 * Template bodies for the SIMD kernel table, instantiated once per
 * backend translation unit (simd_kernels_<level>.cc) with that TU's
 * vector wrapper. Included only by backend TUs — not a public header.
 *
 * Every kernel vectorizes across independent outputs: each vector lane
 * owns one output and accumulates its terms in exactly the scalar
 * reference order (starting from 0.0, taps ascending). Remainder
 * outputs that do not fill a vector run through a scalar epilogue with
 * the same per-output order, so results are bit-for-bit identical to
 * the scalar backend at any length. Kernels must be compiled with FP
 * contraction off (no FMA fusing) — see src/util/CMakeLists.txt.
 */

#ifndef DIDT_UTIL_SIMD_KERNELS_IMPL_HH
#define DIDT_UTIL_SIMD_KERNELS_IMPL_HH

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/simd.hh"

namespace didt::simd
{

template <class V>
void
dwtAnalyzeImpl(const double *in, std::size_t count, const double *h,
               const double *g, std::size_t flen, double *approx,
               double *detail)
{
    constexpr std::size_t W = V::width;
    std::size_t k = 0;
    if (flen == 2) {
        // Haar-style two-tap butterfly: one deinterleaving load feeds
        // both outputs.
        const V h0 = V::set1(h[0]);
        const V h1 = V::set1(h[1]);
        const V g0 = V::set1(g[0]);
        const V g1 = V::set1(g[1]);
        for (; k + W <= count; k += W) {
            V even;
            V odd;
            V::load2(in + 2 * k, even, odd);
            const V a = (V::zero() + h0 * even) + h1 * odd;
            const V d = (V::zero() + g0 * even) + g1 * odd;
            a.store(approx + k);
            d.store(detail + k);
        }
    } else if (flen >= 2) {
        // Taps walked in pairs so one load2 serves even and odd tap
        // offsets; each lane reads in[2k + m], exactly the scalar
        // indices (the highest address touched equals the scalar
        // maximum 2(count-1) + flen - 1).
        for (; k + W <= count; k += W) {
            V a = V::zero();
            V d = V::zero();
            for (std::size_t m = 0; m + 1 < flen; m += 2) {
                V even;
                V odd;
                V::load2(in + 2 * k + m, even, odd);
                a = a + V::set1(h[m]) * even;
                d = d + V::set1(g[m]) * even;
                a = a + V::set1(h[m + 1]) * odd;
                d = d + V::set1(g[m + 1]) * odd;
            }
            if (flen & 1) {
                // Odd-length filter: the last tap sits at an even
                // stride-2 offset; reading it as the odd lanes of a
                // load2 based one element earlier stays within the
                // scalar maximum index.
                V even;
                V odd;
                V::load2(in + 2 * k + flen - 2, even, odd);
                a = a + V::set1(h[flen - 1]) * odd;
                d = d + V::set1(g[flen - 1]) * odd;
            }
            a.store(approx + k);
            d.store(detail + k);
        }
    }
    for (; k < count; ++k) {
        double a = 0.0;
        double d = 0.0;
        for (std::size_t m = 0; m < flen; ++m) {
            a += h[m] * in[2 * k + m];
            d += g[m] * in[2 * k + m];
        }
        approx[k] = a;
        detail[k] = d;
    }
}

template <class V>
void
dwtSynthesizeImpl(const double *approx, const double *detail,
                  std::size_t pairs, const double *h, const double *g,
                  std::size_t flen, double *out)
{
    // The scalar reference scatters: for k ascending, out[2k + m] +=
    // h[m] a[k] + g[m] d[k]. Recast as a gather per output pair
    // j (outputs 2j and 2j+1): contributing k range is
    // [j - flen/2 + 1, j] clamped to [0, pairs), and ascending k is
    // the scalar accumulation order for every output.
    if (pairs == 0)
        return;
    constexpr std::size_t W = V::width;
    const std::size_t half = flen / 2;
    const std::size_t total = pairs + half - 1;

    auto gatherPair = [&](std::size_t j) {
        const std::size_t k_lo = j + 1 >= half ? j + 1 - half : 0;
        const std::size_t k_hi = j < pairs ? j : pairs - 1;
        double acc_e = 0.0;
        double acc_o = 0.0;
        for (std::size_t k = k_lo; k <= k_hi; ++k) {
            const std::size_t m = 2 * (j - k);
            acc_e += h[m] * approx[k] + g[m] * detail[k];
            acc_o += h[m + 1] * approx[k] + g[m + 1] * detail[k];
        }
        out[2 * j] = acc_e;
        out[2 * j + 1] = acc_o;
    };

    // Low ramp: fewer than `half` contributors.
    std::size_t j = 0;
    for (; j < half - 1 && j < pairs; ++j)
        gatherPair(j);

    // Steady state: every output pair sums all `half` tap pairs; lanes
    // are W consecutive j's, loads are contiguous in k.
    for (; j + W <= pairs; j += W) {
        V acc_e = V::zero();
        V acc_o = V::zero();
        const std::size_t base = j + 1 - half;
        for (std::size_t t = 0; t < half; ++t) {
            const V a = V::load(approx + base + t);
            const V d = V::load(detail + base + t);
            const std::size_t m = flen - 2 - 2 * t;
            acc_e = acc_e + (V::set1(h[m]) * a + V::set1(g[m]) * d);
            acc_o = acc_o + (V::set1(h[m + 1]) * a + V::set1(g[m + 1]) * d);
        }
        V::store2(out + 2 * j, acc_e, acc_o);
    }

    // Scalar steady remainder plus the high ramp past the last k.
    for (; j < total; ++j)
        gatherPair(j);
}

template <class V>
void
modwtStepImpl(const double *current, std::size_t start, std::size_t count,
              std::size_t stride, const double *h, const double *g,
              std::size_t flen, double *next, double *detail)
{
    constexpr std::size_t W = V::width;
    const std::size_t end = start + count;
    std::size_t t = start;
    for (; t + W <= end; t += W) {
        V a = V::zero();
        V d = V::zero();
        for (std::size_t l = 0; l < flen; ++l) {
            const V x = V::load(current + (t - stride * l));
            a = a + V::set1(h[l]) * x;
            d = d + V::set1(g[l]) * x;
        }
        a.store(next + t);
        d.store(detail + t);
    }
    for (; t < end; ++t) {
        double a = 0.0;
        double d = 0.0;
        for (std::size_t l = 0; l < flen; ++l) {
            const double x = current[t - stride * l];
            a += h[l] * x;
            d += g[l] * x;
        }
        next[t] = a;
        detail[t] = d;
    }
}

template <class V>
void
convolveSteadyImpl(const double *x, std::size_t start, std::size_t count,
                   const double *kernel, std::size_t klen, double *out)
{
    constexpr std::size_t W = V::width;
    const std::size_t end = start + count;
    std::size_t n = start;
    for (; n + W <= end; n += W) {
        V acc = V::zero();
        for (std::size_t m = 0; m < klen; ++m)
            acc = acc + V::set1(kernel[m]) * V::load(x + (n - m));
        acc.store(out + n);
    }
    for (; n < end; ++n) {
        double acc = 0.0;
        for (std::size_t m = 0; m < klen; ++m)
            acc += kernel[m] * x[n - m];
        out[n] = acc;
    }
}

template <class V>
void
thresholdCountsImpl(const double *v, std::size_t n, double lo, double hi,
                    std::uint64_t *below, std::uint64_t *above)
{
    constexpr std::size_t W = V::width;
    const V vlo = V::set1(lo);
    const V vhi = V::set1(hi);
    std::uint64_t b = 0;
    std::uint64_t a = 0;
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
        const V x = V::load(v + i);
        b += static_cast<std::uint64_t>(std::popcount(V::ltMask(x, vlo)));
        a += static_cast<std::uint64_t>(std::popcount(V::gtMask(x, vhi)));
    }
    for (; i < n; ++i) {
        if (v[i] < lo)
            ++b;
        if (v[i] > hi)
            ++a;
    }
    *below = b;
    *above = a;
}

template <class V>
void
binIndicesImpl(const double *x, std::size_t n, double lo, double width,
               double *bins)
{
    constexpr std::size_t W = V::width;
    const V vlo = V::set1(lo);
    const V vw = V::set1(width);
    std::size_t i = 0;
    for (; i + W <= n; i += W)
        V::floorv((V::load(x + i) - vlo) / vw).store(bins + i);
    for (; i < n; ++i)
        bins[i] = std::floor((x[i] - lo) / width);
}

template <class V>
void
emaUpdateImpl(double *emas, const double *targets, std::size_t n,
              double alpha)
{
    constexpr std::size_t W = V::width;
    const V va = V::set1(alpha);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
        const V e = V::load(emas + i);
        const V t = V::load(targets + i);
        (e + va * (t - e)).store(emas + i);
    }
    for (; i < n; ++i)
        emas[i] += alpha * (targets[i] - emas[i]);
}

template <class V>
void
gatedLinearIdleImpl(const double *peak, const double *util, std::size_t n,
                    double idle_fraction, double *out)
{
    constexpr std::size_t W = V::width;
    const V idle = V::set1(idle_fraction);
    const V active = V::set1(1.0 - idle_fraction);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
        const V p = V::load(peak + i);
        const V u = V::load(util + i);
        (p * (idle + active * u)).store(out + i);
    }
    for (; i < n; ++i)
        out[i] = peak[i] *
                 (idle_fraction + (1.0 - idle_fraction) * util[i]);
}

template <class V>
KernelTable
makeKernelTable()
{
    KernelTable t;
    t.dwtAnalyze = &dwtAnalyzeImpl<V>;
    t.dwtSynthesize = &dwtSynthesizeImpl<V>;
    t.modwtStep = &modwtStepImpl<V>;
    t.convolveSteady = &convolveSteadyImpl<V>;
    t.thresholdCounts = &thresholdCountsImpl<V>;
    t.binIndices = &binIndicesImpl<V>;
    t.emaUpdate = &emaUpdateImpl<V>;
    t.gatedLinearIdle = &gatedLinearIdleImpl<V>;
    return t;
}

} // namespace didt::simd

#endif // DIDT_UTIL_SIMD_KERNELS_IMPL_HH
