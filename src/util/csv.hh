/**
 * @file
 * Tabular output helpers used by the benchmark harnesses.
 *
 * Every figure/table bench prints both a human-readable aligned table and
 * (optionally) machine-readable CSV, so results can be re-plotted.
 */

#ifndef DIDT_UTIL_CSV_HH
#define DIDT_UTIL_CSV_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace didt
{

/**
 * A simple in-memory table with named columns. Cells are strings;
 * numeric convenience setters format with a fixed precision.
 */
class Table
{
  public:
    /** Construct a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Number of data rows. */
    std::size_t rows() const { return cells_.size(); }

    /** Number of columns. */
    std::size_t cols() const { return headers_.size(); }

    /** Begin a new (empty) row. Subsequent add() calls fill it. */
    void newRow();

    /** Append a string cell to the current row. */
    void add(const std::string &value);

    /** Append a formatted double cell (fixed, @p precision digits). */
    void add(double value, int precision = 4);

    /** Append an integer cell. */
    void add(long long value);

    /** Write as aligned human-readable text. */
    void printText(std::ostream &os) const;

    /** Write as CSV (headers first). */
    void printCsv(std::ostream &os) const;

    /** Write CSV to the named file; fatal on I/O error. */
    void writeCsvFile(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> cells_;
};

/**
 * Render a simple horizontal ASCII bar scaled to @p width characters.
 * Used by benches to sketch histogram/series shapes in terminal output.
 */
std::string asciiBar(double value, double max_value, int width = 40);

} // namespace didt

#endif // DIDT_UTIL_CSV_HH
