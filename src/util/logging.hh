/**
 * @file
 * Status and error reporting utilities.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user-caused errors (bad configuration),
 * warn()/inform() for non-fatal status messages.
 */

#ifndef DIDT_UTIL_LOGGING_HH
#define DIDT_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace didt
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel
{
    Quiet,   ///< suppress inform() and warn()
    Normal,  ///< print warn(), suppress inform()
    Verbose, ///< print everything
};

/** Set the global log verbosity. Safe to call from any thread. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Parse a --log-level value ("quiet", "normal", or "verbose",
 * case-sensitive). Exits with a fatal diagnostic on anything else.
 */
LogLevel parseLogLevel(const std::string &name);

/** The canonical name of a level, inverse of parseLogLevel(). */
const char *logLevelName(LogLevel level);

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate a heterogeneous argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace didt

/**
 * Abort with a message: something happened that should never happen
 * regardless of what the user does (an internal bug). Calls std::abort().
 */
#define didt_panic(...) \
    ::didt::detail::panicImpl(__FILE__, __LINE__, \
                              ::didt::detail::concat(__VA_ARGS__))

/**
 * Exit with a message: the run cannot continue due to a user error
 * (bad configuration, invalid arguments). Calls std::exit(1).
 */
#define didt_fatal(...) \
    ::didt::detail::fatalImpl(__FILE__, __LINE__, \
                              ::didt::detail::concat(__VA_ARGS__))

/** Print a warning about questionable but survivable conditions. */
#define didt_warn(...) \
    ::didt::detail::warnImpl(::didt::detail::concat(__VA_ARGS__))

/** Print an informational status message (Verbose level only). */
#define didt_inform(...) \
    ::didt::detail::informImpl(::didt::detail::concat(__VA_ARGS__))

#endif // DIDT_UTIL_LOGGING_HH
