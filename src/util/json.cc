#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/logging.hh"
#include "verify/failpoint.hh"

namespace didt
{

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        didt_panic("JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        didt_panic("JsonValue: not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        didt_panic("JsonValue: not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        didt_panic("JsonValue: not an array");
    return array_;
}

void
JsonValue::push(JsonValue value)
{
    if (kind_ != Kind::Array)
        didt_panic("JsonValue: push on non-array");
    array_.push_back(std::move(value));
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        didt_panic("JsonValue: not an object");
    return object_;
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    if (kind_ != Kind::Object)
        didt_panic("JsonValue: set on non-object");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : object_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == other.bool_;
      case Kind::Number:
        return number_ == other.number_;
      case Kind::String:
        return string_ == other.string_;
      case Kind::Array:
        return array_ == other.array_;
      case Kind::Object:
        return object_ == other.object_;
    }
    return false;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        didt_panic("JSON cannot represent non-finite number");
    char buf[40];
    // Integers print without an exponent or fraction; everything else
    // with enough digits to round-trip exactly through strtod.
    if (value == std::floor(value) && std::fabs(value) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    else
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

void
JsonValue::write(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2,
                                ' ');
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Number:
        os << jsonNumber(number_);
        break;
      case Kind::String:
        os << '"' << jsonEscape(string_) << '"';
        break;
      case Kind::Array:
        if (array_.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < array_.size(); ++i) {
            os << inner_pad;
            array_[i].write(os, indent + 1);
            os << (i + 1 < array_.size() ? ",\n" : "\n");
        }
        os << pad << ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < object_.size(); ++i) {
            os << inner_pad << '"' << jsonEscape(object_[i].first)
               << "\": ";
            object_[i].second.write(os, indent + 1);
            os << (i + 1 < object_.size() ? ",\n" : "\n");
        }
        os << pad << '}';
        break;
    }
}

std::string
JsonValue::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

namespace
{

/** Strict recursive-descent JSON parser. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue parseDocument()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return value;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue parseValue()
    {
        // Bounded so adversarial nesting ("[[[[...") fails as a parse
        // error instead of overflowing the stack (found by the
        // tests/fuzz/ json driver).
        if (depth_ >= kMaxDepth)
            fail("nesting deeper than 256 levels");
        ++depth_;
        JsonValue value = parseValueInner();
        --depth_;
        return value;
    }

    JsonValue parseValueInner()
    {
        skipSpace();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue(parseString());
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return JsonValue(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return JsonValue(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue();
          default:
            return JsonValue(parseNumber());
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            obj.set(key, parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (BMP only; the writer never emits
                // surrogate escapes).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    double parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (token.empty() || end != token.c_str() + token.size())
            fail("malformed number '" + token + "'");
        // "1e999" parses to inf, which no JSON document can represent
        // and which the writer refuses to re-serialize; reject it here
        // so a parsed document always round-trips.
        if (!std::isfinite(value))
            fail("number out of range '" + token + "'");
        return value;
    }

    static constexpr std::size_t kMaxDepth = 256;

    const std::string &text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    if (DIDT_FAILPOINT("json.parse"))
        throw std::runtime_error("JSON parse error: injected fault "
                                 "(json.parse)");
    return JsonParser(text).parseDocument();
}

JsonValue
readJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        didt_fatal("cannot open ", path, " for reading");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof())
        didt_fatal("error reading ", path);
    return parseJson(buf.str());
}

} // namespace didt
