/**
 * @file
 * Scalar reference backend: always compiled, defines the accumulation
 * order every vector backend must reproduce bit-for-bit.
 */

#include "util/simd_kernels_impl.hh"

namespace didt::simd
{

const KernelTable &
scalarKernelTable()
{
    static const KernelTable table = makeKernelTable<VecScalar>();
    return table;
}

} // namespace didt::simd
