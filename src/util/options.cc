#include "util/options.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace didt
{

void
Options::declare(const std::string &name, const std::string &default_value,
                 const std::string &help)
{
    decls_[name] = Decl{default_value, help};
}

void
Options::parse(int argc, char **argv)
{
    // Every binary accepts --log-level uniformly; an explicit
    // declaration (emplace is a no-op then) can override the help text.
    decls_.emplace("log-level",
                   Decl{"normal",
                        "log verbosity: quiet, normal, or verbose"});
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("%s", usage(argv[0]).c_str());
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            didt_fatal("unexpected positional argument: ", arg);
        arg = arg.substr(2);

        std::string name;
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            auto it = decls_.find(name);
            if (it == decls_.end())
                didt_fatal("unknown option --", name);
            const bool is_bool_flag =
                it->second.defaultValue == "true" ||
                it->second.defaultValue == "false";
            if (is_bool_flag &&
                (i + 1 >= argc ||
                 std::string(argv[i + 1]).rfind("--", 0) == 0)) {
                value = "true";
            } else {
                if (i + 1 >= argc)
                    didt_fatal("option --", name, " requires a value");
                value = argv[++i];
            }
        }
        if (decls_.find(name) == decls_.end())
            didt_fatal("unknown option --", name);
        values_[name] = value;
    }
    setLogLevel(parseLogLevel(get("log-level")));
}

std::string
Options::get(const std::string &name) const
{
    auto vit = values_.find(name);
    if (vit != values_.end())
        return vit->second;
    auto dit = decls_.find(name);
    if (dit == decls_.end())
        didt_panic("option --", name, " was never declared");
    return dit->second.defaultValue;
}

long long
Options::getInt(const std::string &name) const
{
    const std::string v = get(name);
    try {
        std::size_t pos = 0;
        long long result = std::stoll(v, &pos);
        if (pos != v.size())
            throw std::invalid_argument(v);
        return result;
    } catch (const std::exception &) {
        didt_fatal("option --", name, " expects an integer, got '", v, "'");
    }
}

double
Options::getDouble(const std::string &name) const
{
    const std::string v = get(name);
    try {
        std::size_t pos = 0;
        double result = std::stod(v, &pos);
        if (pos != v.size())
            throw std::invalid_argument(v);
        return result;
    } catch (const std::exception &) {
        didt_fatal("option --", name, " expects a number, got '", v, "'");
    }
}

bool
Options::getBool(const std::string &name) const
{
    const std::string v = get(name);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string
Options::usage(const std::string &program) const
{
    std::ostringstream os;
    os << "usage: " << program << " [options]\n";
    for (const auto &[name, decl] : decls_) {
        os << "  --" << name << " (default: " << decl.defaultValue << ")\n"
           << "      " << decl.help << "\n";
    }
    return os.str();
}

} // namespace didt
