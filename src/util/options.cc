#include "util/options.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace didt
{

void
Options::declare(const std::string &name, const std::string &default_value,
                 const std::string &help)
{
    decls_[name] = Decl{default_value, help};
}

void
Options::declareSubcommands(const std::vector<std::string> &names)
{
    subcommands_ = names;
}

void
Options::declarePositionals(const std::string &placeholder,
                            std::size_t min_count, std::size_t max_count,
                            const std::string &help)
{
    positionalPlaceholder_ = placeholder;
    positionalMin_ = min_count;
    positionalMax_ = max_count;
    positionalsDeclared_ = true;
    // The help text rides on the usage listing via the placeholder.
    decls_.emplace("<" + placeholder + ">", Decl{"", help});
}

namespace
{

/** Tokens a valueless boolean flag may consume as its value. Anything
 *  else (a path, a subcommand, ...) belongs to the next parse slot. */
bool
looksBoolean(const std::string &token)
{
    return token == "true" || token == "false" || token == "1" ||
           token == "0" || token == "yes" || token == "no" ||
           token == "on" || token == "off";
}

} // namespace

void
Options::parse(int argc, char **argv)
{
    // Every binary accepts --log-level uniformly; an explicit
    // declaration (emplace is a no-op then) can override the help text.
    decls_.emplace("log-level",
                   Decl{"normal",
                        "log verbosity: quiet, normal, or verbose"});
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("%s", usage(argv[0]).c_str());
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            // Positional token: the first one is the subcommand when
            // subcommands were declared, the rest are free positionals.
            if (!subcommands_.empty() && subcommand_.empty()) {
                bool known = false;
                for (const std::string &name : subcommands_)
                    known = known || name == arg;
                if (!known)
                    didt_fatal("unknown subcommand '", arg,
                               "' (run with --help for the list)");
                subcommand_ = arg;
                continue;
            }
            if (positionalsDeclared_) {
                if (positionals_.size() >= positionalMax_)
                    didt_fatal("too many positional arguments at '",
                               arg, "' (at most ", positionalMax_,
                               " expected)");
                positionals_.push_back(arg);
                continue;
            }
            didt_fatal("unexpected positional argument: ", arg);
        }
        arg = arg.substr(2);

        std::string name;
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            auto it = decls_.find(name);
            if (it == decls_.end())
                didt_fatal("unknown option --", name);
            const bool is_bool_flag =
                it->second.defaultValue == "true" ||
                it->second.defaultValue == "false";
            // A boolean flag only consumes the next token when it is
            // unambiguously a boolean word; "--verbose replay" leaves
            // "replay" for the subcommand slot.
            if (is_bool_flag &&
                (i + 1 >= argc || !looksBoolean(argv[i + 1]))) {
                value = "true";
            } else {
                if (i + 1 >= argc)
                    didt_fatal("option --", name, " requires a value");
                value = argv[++i];
            }
        }
        if (decls_.find(name) == decls_.end())
            didt_fatal("unknown option --", name);
        values_[name] = value;
    }
    if (!subcommands_.empty() && subcommand_.empty())
        didt_fatal("missing subcommand (run with --help for the list)");
    if (positionals_.size() < positionalMin_)
        didt_fatal("expected at least ", positionalMin_, " positional ",
                   positionalMin_ == 1 ? "argument" : "arguments",
                   positionalPlaceholder_.empty()
                       ? ""
                       : " <" + positionalPlaceholder_ + ">");
    setLogLevel(parseLogLevel(get("log-level")));
}

std::string
Options::get(const std::string &name) const
{
    auto vit = values_.find(name);
    if (vit != values_.end())
        return vit->second;
    auto dit = decls_.find(name);
    if (dit == decls_.end())
        didt_panic("option --", name, " was never declared");
    return dit->second.defaultValue;
}

long long
Options::getInt(const std::string &name) const
{
    const std::string v = get(name);
    try {
        std::size_t pos = 0;
        long long result = std::stoll(v, &pos);
        if (pos != v.size())
            throw std::invalid_argument(v);
        return result;
    } catch (const std::exception &) {
        didt_fatal("option --", name, " expects an integer, got '", v, "'");
    }
}

double
Options::getDouble(const std::string &name) const
{
    const std::string v = get(name);
    try {
        std::size_t pos = 0;
        double result = std::stod(v, &pos);
        if (pos != v.size())
            throw std::invalid_argument(v);
        return result;
    } catch (const std::exception &) {
        didt_fatal("option --", name, " expects a number, got '", v, "'");
    }
}

bool
Options::getBool(const std::string &name) const
{
    const std::string v = get(name);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string
Options::usage(const std::string &program) const
{
    std::ostringstream os;
    os << "usage: " << program;
    if (!subcommands_.empty()) {
        os << " <";
        for (std::size_t i = 0; i < subcommands_.size(); ++i)
            os << (i ? "|" : "") << subcommands_[i];
        os << ">";
    }
    if (positionalsDeclared_)
        os << " [" << positionalPlaceholder_ << "...]";
    os << " [options]\n";
    for (const auto &[name, decl] : decls_) {
        if (name.rfind('<', 0) == 0) {
            os << "  " << name << "\n      " << decl.help << "\n";
            continue;
        }
        os << "  --" << name << " (default: " << decl.defaultValue << ")\n"
           << "      " << decl.help << "\n";
    }
    return os.str();
}

} // namespace didt
