#include "util/csv.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace didt
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        didt_panic("Table requires at least one column");
}

void
Table::newRow()
{
    cells_.emplace_back();
}

void
Table::add(const std::string &value)
{
    if (cells_.empty())
        didt_panic("Table::add() before newRow()");
    if (cells_.back().size() >= headers_.size())
        didt_panic("Table row has more cells than headers (",
                   headers_.size(), ")");
    cells_.back().push_back(value);
}

void
Table::add(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    add(os.str());
}

void
Table::add(long long value)
{
    add(std::to_string(value));
}

void
Table::printText(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : cells_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cell;
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : cells_)
        print_row(row);
}

namespace
{

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << csvEscape(headers_[c]);
    os << '\n';
    for (const auto &row : cells_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << csvEscape(row[c]);
        os << '\n';
    }
}

void
Table::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        didt_fatal("cannot open ", path, " for writing");
    printCsv(out);
}

std::string
asciiBar(double value, double max_value, int width)
{
    if (max_value <= 0.0 || value <= 0.0)
        return std::string();
    int n = static_cast<int>(value / max_value * width + 0.5);
    n = std::clamp(n, 0, width);
    return std::string(static_cast<std::size_t>(n), '#');
}

} // namespace didt
