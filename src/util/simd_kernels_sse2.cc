/**
 * @file
 * SSE2 backend (2-wide doubles). Only added to the build on x86 with
 * DIDT_SIMD=ON; SSE2 is part of the x86-64 baseline so no extra ISA
 * flags are needed, but FP contraction must stay off (see
 * src/util/CMakeLists.txt).
 */

#include "util/simd_kernels_impl.hh"

#if !defined(__SSE2__)
#error "simd_kernels_sse2.cc requires SSE2 (x86-64 baseline)"
#endif

namespace didt::simd
{

const KernelTable &
sse2KernelTable()
{
    static const KernelTable table = makeKernelTable<VecSse2>();
    return table;
}

} // namespace didt::simd
