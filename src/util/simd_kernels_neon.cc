/**
 * @file
 * NEON backend (2-wide doubles). Only added to the build on aarch64,
 * where Advanced SIMD is architectural baseline.
 */

#include "util/simd_kernels_impl.hh"

#if !defined(__aarch64__) || !defined(__ARM_NEON)
#error "simd_kernels_neon.cc requires aarch64 NEON"
#endif

namespace didt::simd
{

const KernelTable &
neonKernelTable()
{
    static const KernelTable table = makeKernelTable<VecNeon>();
    return table;
}

} // namespace didt::simd
