/**
 * @file
 * Minimal command-line option parser for bench/example binaries.
 *
 * Supports "--name value", "--name=value", and boolean "--flag" forms,
 * plus (when declared) a leading subcommand and free positional
 * arguments — "didt_client replay out.json --socket /run/didt.sock".
 * Unknown options, unknown subcommands, and unexpected positionals are
 * fatal so typos in sweep scripts fail loudly. Every parser implicitly
 * declares --log-level (quiet/normal/verbose) and applies it via
 * setLogLevel(), so all tools and benches share the same verbosity
 * knob.
 */

#ifndef DIDT_UTIL_OPTIONS_HH
#define DIDT_UTIL_OPTIONS_HH

#include <map>
#include <string>
#include <vector>

namespace didt
{

/** Parsed command-line options with typed accessors and defaults. */
class Options
{
  public:
    /**
     * Declare an option before parsing.
     *
     * @param name option name without leading dashes
     * @param default_value default (also documents the type by usage)
     * @param help one-line description for usage()
     */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Declare the accepted subcommand names. The first positional
     * token must then be one of them (fatal otherwise, including when
     * it is missing); read it back with subcommand().
     */
    void declareSubcommands(const std::vector<std::string> &names);

    /**
     * Accept between @p min_count and @p max_count free positional
     * arguments (after the subcommand, when one is declared);
     * @p placeholder names them in the usage text. Without this
     * declaration any positional argument is fatal, as before.
     */
    void declarePositionals(const std::string &placeholder,
                            std::size_t min_count, std::size_t max_count,
                            const std::string &help);

    /** Parse argv; fatal on unknown or malformed options, prints usage
     *  and exits 0 on --help. */
    void parse(int argc, char **argv);

    /** The parsed subcommand ("" when none were declared). */
    const std::string &subcommand() const { return subcommand_; }

    /** The parsed free positional arguments, in order. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** String value of a declared option. */
    std::string get(const std::string &name) const;

    /** Integer value of a declared option; fatal on parse failure. */
    long long getInt(const std::string &name) const;

    /** Double value of a declared option; fatal on parse failure. */
    double getDouble(const std::string &name) const;

    /** Boolean value: true for "1", "true", "yes", "on". */
    bool getBool(const std::string &name) const;

    /** Render the usage text. */
    std::string usage(const std::string &program) const;

  private:
    struct Decl
    {
        std::string defaultValue;
        std::string help;
    };

    std::map<std::string, Decl> decls_;
    std::map<std::string, std::string> values_;

    std::vector<std::string> subcommands_;
    std::string subcommand_;
    std::string positionalPlaceholder_;
    std::size_t positionalMin_ = 0;
    std::size_t positionalMax_ = 0;
    bool positionalsDeclared_ = false;
    std::vector<std::string> positionals_;
};

} // namespace didt

#endif // DIDT_UTIL_OPTIONS_HH
