/**
 * @file
 * Fundamental value types shared across the library.
 */

#ifndef DIDT_UTIL_TYPES_HH
#define DIDT_UTIL_TYPES_HH

#include <cstdint>
#include <vector>

namespace didt
{

/** Simulated processor clock cycle index. */
using Cycle = std::uint64_t;

/** Electrical current in amperes. */
using Amp = double;

/** Electrical potential in volts. */
using Volt = double;

/** Power in watts. */
using Watt = double;

/** Frequency in hertz. */
using Hertz = double;

/** A per-cycle current waveform (one sample per processor cycle). */
using CurrentTrace = std::vector<Amp>;

/** A per-cycle voltage waveform. */
using VoltageTrace = std::vector<Volt>;

} // namespace didt

#endif // DIDT_UTIL_TYPES_HH
