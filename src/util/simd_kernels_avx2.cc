/**
 * @file
 * AVX2 backend (4-wide doubles). Compiled with -mavx2 on this TU only;
 * the dispatcher never selects this table unless the running CPU
 * reports AVX2. FMA intrinsics are never used and contraction is
 * disabled so products round exactly like the scalar reference.
 */

#include "util/simd_kernels_impl.hh"

#if !defined(__AVX2__)
#error "simd_kernels_avx2.cc must be compiled with -mavx2"
#endif

namespace didt::simd
{

const KernelTable &
avx2KernelTable()
{
    static const KernelTable table = makeKernelTable<VecAvx2>();
    return table;
}

} // namespace didt::simd
