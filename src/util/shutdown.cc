#include "util/shutdown.hh"

#include <csignal>

#include <unistd.h>

namespace didt
{

namespace
{

std::atomic<bool> g_shutdown{false};
int g_wake_pipe[2] = {-1, -1};

extern "C" void
shutdownSignalHandler(int signo)
{
    // Async-signal-safe only: set the flag, nudge the pipe, and on a
    // repeat signal restore the default disposition so the next
    // delivery terminates a wedged drain.
    if (g_shutdown.exchange(true, std::memory_order_release))
        ::signal(signo, SIG_DFL);
    if (g_wake_pipe[1] >= 0) {
        const char byte = 1;
        (void)!::write(g_wake_pipe[1], &byte, 1);
    }
}

} // namespace

void
installShutdownHandler()
{
    if (g_wake_pipe[0] >= 0)
        return;
    if (::pipe(g_wake_pipe) < 0) {
        g_wake_pipe[0] = g_wake_pipe[1] = -1;
        // Degraded but functional: the flag still works, only
        // poll-based wakeups are lost.
    }
    struct sigaction action
    {
    };
    action.sa_handler = shutdownSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // interrupt blocking syscalls (no SA_RESTART)
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
}

bool
shutdownRequested()
{
    return g_shutdown.load(std::memory_order_acquire);
}

const std::atomic<bool> &
shutdownFlag()
{
    return g_shutdown;
}

int
shutdownWakeFd()
{
    return g_wake_pipe[0];
}

} // namespace didt
