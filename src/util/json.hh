/**
 * @file
 * Minimal JSON document model with a byte-deterministic writer and a
 * strict parser.
 *
 * The writer is byte-deterministic for a given document (object keys
 * keep insertion order, numbers format identically on every run), so
 * two runs that compute the same values produce identical files
 * regardless of scheduling. The parser exists so results can be
 * round-tripped and validated in tests and downstream tooling without
 * an external dependency. Shared by the campaign result writer
 * (runner/result_json) and the metrics snapshot writer (obs/metrics).
 */

#ifndef DIDT_UTIL_JSON_HH
#define DIDT_UTIL_JSON_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace didt
{

/** A JSON document node. Objects preserve insertion order. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double n) : kind_(Kind::Number), number_(n) {}
    JsonValue(long long n)
        : kind_(Kind::Number), number_(static_cast<double>(n))
    {
    }
    JsonValue(const char *s) : kind_(Kind::String), string_(s) {}
    JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    /** An empty array node. */
    static JsonValue array();

    /** An empty object node. */
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** Value accessors; panic on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array access; panic unless an array. */
    const std::vector<JsonValue> &items() const;
    void push(JsonValue value);

    /** Object access; panic unless an object. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;
    void set(const std::string &key, JsonValue value);

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Deep structural equality (object member order significant). */
    bool operator==(const JsonValue &other) const;

    /** Serialize with 2-space indentation per level. */
    void write(std::ostream &os, int indent = 0) const;

    /** Serialize to a string. */
    std::string dump() const;

  private:
    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Escape a string for embedding in a JSON document (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Format a finite double exactly as the writer does: integers without
 * a fractional part, everything else with round-trip precision.
 */
std::string jsonNumber(double value);

/**
 * Parse a JSON document. Strict: rejects trailing garbage, unterminated
 * strings, bad escapes, and malformed numbers by throwing
 * std::runtime_error with a byte offset.
 */
JsonValue parseJson(const std::string &text);

/** Read a file and parse it as JSON; fatal on I/O errors. */
JsonValue readJsonFile(const std::string &path);

} // namespace didt

#endif // DIDT_UTIL_JSON_HH
