/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256++ generator plus the handful of
 * distributions the simulator and workload generator need. We avoid
 * <random> engines for cross-platform determinism: the standard only
 * pins down engine output, not distribution output, and reproducible
 * traces matter for the experiments.
 */

#ifndef DIDT_UTIL_RNG_HH
#define DIDT_UTIL_RNG_HH

#include <cmath>
#include <cstdint>

namespace didt
{

/**
 * Deterministic xoshiro256++ pseudo-random generator with distribution
 * helpers. All draws are reproducible for a given seed on any platform.
 *
 * The hot draws are defined inline: the workload generator makes
 * several per instruction, and the simulator's fast-forward path makes
 * them by the million. The arithmetic is draw-for-draw identical to
 * the historical out-of-line definitions, so streams (and therefore
 * traces) are unchanged.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 high bits -> double in [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n)
    {
        if (n == 0)
            failUniformInt();
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0ULL - n) % n;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % n;
        }
    }

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Standard normal draw (Box-Muller with cached spare). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential draw with the given rate lambda. @pre lambda > 0. */
    double exponential(double lambda)
    {
        if (lambda <= 0.0)
            failExponential(lambda);
        double u;
        do {
            u = uniform();
        } while (u <= 0.0);
        return -std::log(u) / lambda;
    }

    /**
     * Geometric draw: number of failures before first success with
     * success probability p in (0, 1].
     */
    std::uint64_t geometric(double p)
    {
        if (p <= 0.0 || p > 1.0)
            failGeometric(p);
        if (p == 1.0)
            return 0;
        double u;
        do {
            u = uniform();
        } while (u <= 0.0);
        return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
    }

    /** Re-seed the generator, discarding all state. */
    void seed(std::uint64_t seed_value);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    [[noreturn]] static void failUniformInt();
    [[noreturn]] static void failExponential(double lambda);
    [[noreturn]] static void failGeometric(double p);

    std::uint64_t s_[4];
    double spareNormal_;
    bool hasSpare_;
};

} // namespace didt

#endif // DIDT_UTIL_RNG_HH
