/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256++ generator plus the handful of
 * distributions the simulator and workload generator need. We avoid
 * <random> engines for cross-platform determinism: the standard only
 * pins down engine output, not distribution output, and reproducible
 * traces matter for the experiments.
 */

#ifndef DIDT_UTIL_RNG_HH
#define DIDT_UTIL_RNG_HH

#include <cstdint>

namespace didt
{

/**
 * Deterministic xoshiro256++ pseudo-random generator with distribution
 * helpers. All draws are reproducible for a given seed on any platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Standard normal draw (Box-Muller with cached spare). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential draw with the given rate lambda. @pre lambda > 0. */
    double exponential(double lambda);

    /**
     * Geometric draw: number of failures before first success with
     * success probability p in (0, 1].
     */
    std::uint64_t geometric(double p);

    /** Re-seed the generator, discarding all state. */
    void seed(std::uint64_t seed_value);

  private:
    std::uint64_t s_[4];
    double spareNormal_;
    bool hasSpare_;
};

} // namespace didt

#endif // DIDT_UTIL_RNG_HH
