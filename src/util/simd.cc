/**
 * @file
 * Runtime dispatch for the SIMD kernel tables: probe the CPU once,
 * honor the DIDT_SIMD environment variable (scalar/sse2/avx2/neon) as
 * a cap, and let tests and benches pin a level with forceLevel().
 * Which backends exist is decided at build time via the
 * DIDT_SIMD_HAVE_* definitions set in src/util/CMakeLists.txt.
 */

#include "util/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace didt::simd
{

#if defined(DIDT_SIMD_HAVE_SSE2)
const KernelTable &sse2KernelTable();
#endif
#if defined(DIDT_SIMD_HAVE_AVX2)
const KernelTable &avx2KernelTable();
#endif
#if defined(DIDT_SIMD_HAVE_NEON)
const KernelTable &neonKernelTable();
#endif
const KernelTable &scalarKernelTable();

namespace
{

/** -1 = not forced, otherwise the int value of the forced Level. */
std::atomic<int> g_forced{-1};

Level
detectLevel()
{
#if defined(DIDT_SIMD_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
#endif
#if defined(DIDT_SIMD_HAVE_SSE2)
    if (__builtin_cpu_supports("sse2"))
        return Level::Sse2;
#endif
#if defined(DIDT_SIMD_HAVE_NEON)
    return Level::Neon;
#endif
    return Level::Scalar;
}

Level
initialLevel()
{
    const Level detected = detectLevel();
    const char *env = std::getenv("DIDT_SIMD");
    if (env == nullptr || *env == '\0')
        return detected;
    Level requested = Level::Scalar;
    if (std::strcmp(env, "scalar") == 0)
        requested = Level::Scalar;
    else if (std::strcmp(env, "sse2") == 0)
        requested = Level::Sse2;
    else if (std::strcmp(env, "avx2") == 0)
        requested = Level::Avx2;
    else if (std::strcmp(env, "neon") == 0)
        requested = Level::Neon;
    else {
        didt_warn("ignoring unknown DIDT_SIMD level '", env, "'");
        return detected;
    }
    if (!levelAvailable(requested)) {
        didt_warn("DIDT_SIMD=", env,
                  " not available on this build/CPU; using ",
                  levelName(detected));
        return detected;
    }
    return requested;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::Sse2:
        return "sse2";
    case Level::Avx2:
        return "avx2";
    case Level::Neon:
        return "neon";
    }
    return "unknown";
}

bool
levelAvailable(Level level)
{
    switch (level) {
    case Level::Scalar:
        return true;
    case Level::Sse2:
#if defined(DIDT_SIMD_HAVE_SSE2)
        return __builtin_cpu_supports("sse2");
#else
        return false;
#endif
    case Level::Avx2:
#if defined(DIDT_SIMD_HAVE_AVX2)
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
    case Level::Neon:
#if defined(DIDT_SIMD_HAVE_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

Level
bestLevel()
{
    static const Level level = initialLevel();
    return level;
}

Level
activeLevel()
{
    const int forced = g_forced.load(std::memory_order_relaxed);
    return forced < 0 ? bestLevel() : static_cast<Level>(forced);
}

void
forceLevel(Level level)
{
    if (!levelAvailable(level))
        didt_panic("cannot force SIMD level '", levelName(level),
                   "': not available on this build/CPU");
    g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
clearForcedLevel()
{
    g_forced.store(-1, std::memory_order_relaxed);
}

const KernelTable &
kernelsFor(Level level)
{
    switch (level) {
#if defined(DIDT_SIMD_HAVE_SSE2)
    case Level::Sse2:
        return sse2KernelTable();
#endif
#if defined(DIDT_SIMD_HAVE_AVX2)
    case Level::Avx2:
        return avx2KernelTable();
#endif
#if defined(DIDT_SIMD_HAVE_NEON)
    case Level::Neon:
        return neonKernelTable();
#endif
    default:
        return scalarKernelTable();
    }
}

const KernelTable &
kernels()
{
    return kernelsFor(activeLevel());
}

} // namespace didt::simd
