#include "util/rng.hh"

#include "util/logging.hh"

namespace didt
{

namespace
{

/** splitmix64 step used to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &word : s_)
        word = splitmix64(x);
    // xoshiro must not start from the all-zero state.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
    spareNormal_ = 0.0;
    hasSpare_ = false;
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = radius * std::sin(theta);
    hasSpare_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

void
Rng::failUniformInt()
{
    didt_panic("uniformInt(0) is ill-defined");
}

void
Rng::failExponential(double lambda)
{
    didt_panic("exponential() requires lambda > 0, got ", lambda);
}

void
Rng::failGeometric(double p)
{
    didt_panic("geometric() requires p in (0,1], got ", p);
}

} // namespace didt
