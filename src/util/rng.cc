#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace didt
{

namespace
{

/** splitmix64 step used to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &word : s_)
        word = splitmix64(x);
    // xoshiro must not start from the all-zero state.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
    spareNormal_ = 0.0;
    hasSpare_ = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        didt_panic("uniformInt(0) is ill-defined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0ULL - n) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = radius * std::sin(theta);
    hasSpare_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double lambda)
{
    if (lambda <= 0.0)
        didt_panic("exponential() requires lambda > 0, got ", lambda);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        didt_panic("geometric() requires p in (0,1], got ", p);
    if (p == 1.0)
        return 0;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

} // namespace didt
