/**
 * @file
 * Portable SIMD layer: fixed-width double-vector wrappers over
 * AVX2/SSE2/NEON intrinsics with a scalar fallback, plus runtime CPU
 * dispatch through a per-kernel function table.
 *
 * Determinism contract: every kernel in the table vectorizes across
 * *independent outputs only*. The per-output accumulation order is
 * exactly the reference scalar order, so results are bit-for-bit
 * identical at every level (scalar fallback, SSE2, AVX2, NEON) and
 * across -DDIDT_SIMD=ON/OFF builds. Reductions that fold many inputs
 * into one value (energies, running statistics, dot products) are
 * deliberately *not* in the table: vectorizing them would reassociate
 * floating-point additions and change low-order bits (see DESIGN.md
 * section 11).
 *
 * Backend selection: each backend lives in its own translation unit
 * (simd_kernels_<level>.cc) compiled with that ISA's flags; this
 * header only defines the vector wrapper matching the macros the
 * current TU was compiled with. simd.cc probes the CPU once at
 * startup (overridable with the DIDT_SIMD environment variable or
 * forceLevel(), used by tests and benches) and serves the best
 * available table.
 */

#ifndef DIDT_UTIL_SIMD_HH
#define DIDT_UTIL_SIMD_HH

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__SSE2__) || defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace didt::simd
{

/** Instruction-set level of a kernel table. */
enum class Level
{
    Scalar = 0, ///< reference implementation, always available
    Sse2 = 1,   ///< 2-wide doubles (x86-64 baseline)
    Avx2 = 2,   ///< 4-wide doubles
    Neon = 3,   ///< 2-wide doubles (aarch64 baseline)
};

/** Human-readable level name ("scalar", "sse2", ...). */
const char *levelName(Level level);

/**
 * Per-kernel function table. Every entry computes bit-for-bit the same
 * outputs as the scalar reference: vectorization is across outputs,
 * never across a single output's accumulation chain.
 */
struct KernelTable
{
    /**
     * One DWT analysis step over the modulo-free outputs: for each
     * k in [0, count), approx[k] = 0 + sum_m h[m] * in[2k + m] and
     * detail[k] likewise with g, taps in ascending m order.
     * Outputs must not alias @p in.
     */
    void (*dwtAnalyze)(const double *in, std::size_t count,
                       const double *h, const double *g, std::size_t flen,
                       double *approx, double *detail);

    /**
     * One DWT synthesis step over the modulo-free scatter region,
     * recast as a per-output gather: writes out[i] for
     * i in [0, 2 * pairs + flen - 2), where out[i] is the sum of
     * h[i-2k] * approx[k] + g[i-2k] * detail[k] over contributing
     * k < pairs in ascending k order (the exact order the scalar
     * scatter loop accumulates). @p flen must be even; @p out must not
     * alias the inputs. Overwrites (the scalar reference zero-fills
     * then accumulates; the gather starts each output at 0.0).
     */
    void (*dwtSynthesize)(const double *approx, const double *detail,
                          std::size_t pairs, const double *h,
                          const double *g, std::size_t flen, double *out);

    /**
     * MODWT filter step over the modulo-free range: for each
     * t in [start, start + count), next[t] = sum_l h[l] *
     * current[t - stride * l] and detail[t] likewise with g, taps in
     * ascending l order. Requires start >= stride * (flen - 1);
     * outputs must not alias @p current.
     */
    void (*modwtStep)(const double *current, std::size_t start,
                      std::size_t count, std::size_t stride,
                      const double *h, const double *g, std::size_t flen,
                      double *next, double *detail);

    /**
     * Steady-state truncated convolution: for each n in
     * [start, start + count), out[n] = sum_m kernel[m] * x[n - m] over
     * all klen taps in ascending m order. Requires start + 1 >= klen;
     * @p out must not alias @p x.
     */
    void (*convolveSteady)(const double *x, std::size_t start,
                           std::size_t count, const double *kernel,
                           std::size_t klen, double *out);

    /**
     * Count samples strictly below @p lo and strictly above @p hi
     * (NaNs count for neither, matching scalar <
     * and > comparisons). Integer counts are order-independent, so
     * this is exact.
     */
    void (*thresholdCounts)(const double *v, std::size_t n, double lo,
                            double hi, std::uint64_t *below,
                            std::uint64_t *above);

    /**
     * Histogram bin computation: bins[i] = floor((x[i] - lo) / width)
     * as a double (clamping to the bin range is the caller's job, kept
     * scalar so the final integer cast is shared with the reference).
     */
    void (*binIndices)(const double *x, std::size_t n, double lo,
                       double width, double *bins);

    /**
     * Exponential-moving-average step over independent accumulators:
     * emas[i] += alpha * (targets[i] - emas[i]) for i in [0, n). Each
     * lane owns one accumulator (the simulator's per-structure
     * wrong-path activity averages), so the per-accumulator operation
     * chain — subtract, multiply, add, no FMA fusing — is exactly the
     * scalar reference and results are bit-for-bit identical.
     */
    void (*emaUpdate)(double *emas, const double *targets, std::size_t n,
                      double alpha);

    /**
     * Wattch cc3 (LinearIdle) gated power over independent structures:
     * out[i] = peak[i] * (idle_fraction + (1 - idle_fraction) *
     * util[i]) for i in [0, n). Utilizations must be pre-clamped to
     * [0, 1] by the caller (the clamp depends on per-unit port counts
     * and stays scalar). Each lane owns one structure; the per-output
     * multiply/add chain matches the scalar gated() reference exactly.
     */
    void (*gatedLinearIdle)(const double *peak, const double *util,
                            std::size_t n, double idle_fraction,
                            double *out);
};

/** Best level the running CPU and build support (env DIDT_SIMD can
 *  lower it; probed once on first use). */
Level bestLevel();

/** Level currently being dispatched: bestLevel() unless forced. */
Level activeLevel();

/** True when @p level was compiled in and the CPU supports it. */
bool levelAvailable(Level level);

/**
 * Force dispatch to @p level (must be available). Used by the
 * equivalence tests and the scalar-vs-SIMD bench rows; not
 * synchronized against concurrently running kernels, so only call it
 * between workloads.
 */
void forceLevel(Level level);

/** Return to CPU-probed dispatch. */
void clearForcedLevel();

/** The kernel table for the active level. */
const KernelTable &kernels();

/** The kernel table for a specific available level. */
const KernelTable &kernelsFor(Level level);

// ---------------------------------------------------------------------------
// Fixed-width vector wrappers. Only the wrapper matching this TU's ISA
// macros is defined; kernel templates (simd_kernels_impl.hh) are
// instantiated once per backend TU.
// ---------------------------------------------------------------------------

/** Width-1 "vector": the reference scalar backend. */
struct VecScalar
{
    static constexpr std::size_t width = 1;
    double v;

    static VecScalar zero() { return {0.0}; }
    static VecScalar set1(double x) { return {x}; }
    static VecScalar load(const double *p) { return {*p}; }
    void store(double *p) const { *p = v; }

    friend VecScalar operator+(VecScalar a, VecScalar b)
    {
        return {a.v + b.v};
    }
    friend VecScalar operator-(VecScalar a, VecScalar b)
    {
        return {a.v - b.v};
    }
    friend VecScalar operator*(VecScalar a, VecScalar b)
    {
        return {a.v * b.v};
    }
    friend VecScalar operator/(VecScalar a, VecScalar b)
    {
        return {a.v / b.v};
    }

    /** Load 2 * width doubles at @p p, split into even/odd offsets. */
    static void load2(const double *p, VecScalar &even, VecScalar &odd)
    {
        even.v = p[0];
        odd.v = p[1];
    }

    /** Interleave-store even/odd lanes back to 2 * width doubles. */
    static void store2(double *p, VecScalar even, VecScalar odd)
    {
        p[0] = even.v;
        p[1] = odd.v;
    }

    static VecScalar floorv(VecScalar a) { return {std::floor(a.v)}; }

    /** Bitmask of lanes where a < b (NaN compares false). */
    static unsigned ltMask(VecScalar a, VecScalar b)
    {
        return a.v < b.v ? 1u : 0u;
    }

    /** Bitmask of lanes where a > b (NaN compares false). */
    static unsigned gtMask(VecScalar a, VecScalar b)
    {
        return a.v > b.v ? 1u : 0u;
    }
};

#if defined(__SSE2__)
/** 2-wide doubles over SSE2 (x86-64 baseline). */
struct VecSse2
{
    static constexpr std::size_t width = 2;
    __m128d v;

    static VecSse2 zero() { return {_mm_setzero_pd()}; }
    static VecSse2 set1(double x) { return {_mm_set1_pd(x)}; }
    static VecSse2 load(const double *p) { return {_mm_loadu_pd(p)}; }
    void store(double *p) const { _mm_storeu_pd(p, v); }

    friend VecSse2 operator+(VecSse2 a, VecSse2 b)
    {
        return {_mm_add_pd(a.v, b.v)};
    }
    friend VecSse2 operator-(VecSse2 a, VecSse2 b)
    {
        return {_mm_sub_pd(a.v, b.v)};
    }
    friend VecSse2 operator*(VecSse2 a, VecSse2 b)
    {
        return {_mm_mul_pd(a.v, b.v)};
    }
    friend VecSse2 operator/(VecSse2 a, VecSse2 b)
    {
        return {_mm_div_pd(a.v, b.v)};
    }

    static void load2(const double *p, VecSse2 &even, VecSse2 &odd)
    {
        const __m128d lo = _mm_loadu_pd(p);     // p0 p1
        const __m128d hi = _mm_loadu_pd(p + 2); // p2 p3
        even.v = _mm_shuffle_pd(lo, hi, 0b00);  // p0 p2
        odd.v = _mm_shuffle_pd(lo, hi, 0b11);   // p1 p3
    }

    static void store2(double *p, VecSse2 even, VecSse2 odd)
    {
        _mm_storeu_pd(p, _mm_unpacklo_pd(even.v, odd.v));     // e0 o0
        _mm_storeu_pd(p + 2, _mm_unpackhi_pd(even.v, odd.v)); // e1 o1
    }

    static VecSse2 floorv(VecSse2 a)
    {
        // SSE2 has no floor instruction (SSE4.1's roundpd); two scalar
        // floors keep the result identical to the reference.
        alignas(16) double lanes[2];
        _mm_store_pd(lanes, a.v);
        return {_mm_set_pd(std::floor(lanes[1]), std::floor(lanes[0]))};
    }

    static unsigned ltMask(VecSse2 a, VecSse2 b)
    {
        return static_cast<unsigned>(
            _mm_movemask_pd(_mm_cmplt_pd(a.v, b.v)));
    }

    static unsigned gtMask(VecSse2 a, VecSse2 b)
    {
        return static_cast<unsigned>(
            _mm_movemask_pd(_mm_cmpgt_pd(a.v, b.v)));
    }
};
#endif // __SSE2__

#if defined(__AVX2__)
/** 4-wide doubles over AVX2. */
struct VecAvx2
{
    static constexpr std::size_t width = 4;
    __m256d v;

    static VecAvx2 zero() { return {_mm256_setzero_pd()}; }
    static VecAvx2 set1(double x) { return {_mm256_set1_pd(x)}; }
    static VecAvx2 load(const double *p) { return {_mm256_loadu_pd(p)}; }
    void store(double *p) const { _mm256_storeu_pd(p, v); }

    friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_add_pd(a.v, b.v)};
    }
    friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_sub_pd(a.v, b.v)};
    }
    friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_mul_pd(a.v, b.v)};
    }
    friend VecAvx2 operator/(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_div_pd(a.v, b.v)};
    }

    static void load2(const double *p, VecAvx2 &even, VecAvx2 &odd)
    {
        const __m256d lo = _mm256_loadu_pd(p);     // p0 p1 p2 p3
        const __m256d hi = _mm256_loadu_pd(p + 4); // p4 p5 p6 p7
        // unpacklo: p0 p4 p2 p6 -> permute lanes (0,2,1,3): p0 p2 p4 p6
        even.v = _mm256_permute4x64_pd(_mm256_unpacklo_pd(lo, hi),
                                       _MM_SHUFFLE(3, 1, 2, 0));
        odd.v = _mm256_permute4x64_pd(_mm256_unpackhi_pd(lo, hi),
                                      _MM_SHUFFLE(3, 1, 2, 0));
    }

    static void store2(double *p, VecAvx2 even, VecAvx2 odd)
    {
        const __m256d lo = _mm256_unpacklo_pd(even.v, odd.v); // e0 o0 e2 o2
        const __m256d hi = _mm256_unpackhi_pd(even.v, odd.v); // e1 o1 e3 o3
        _mm256_storeu_pd(p, _mm256_permute2f128_pd(lo, hi, 0x20));
        _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
    }

    static VecAvx2 floorv(VecAvx2 a)
    {
        return {_mm256_floor_pd(a.v)};
    }

    static unsigned ltMask(VecAvx2 a, VecAvx2 b)
    {
        return static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)));
    }

    static unsigned gtMask(VecAvx2 a, VecAvx2 b)
    {
        return static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)));
    }
};
#endif // __AVX2__

#if defined(__aarch64__) && defined(__ARM_NEON)
/** 2-wide doubles over NEON (aarch64 baseline). */
struct VecNeon
{
    static constexpr std::size_t width = 2;
    float64x2_t v;

    static VecNeon zero() { return {vdupq_n_f64(0.0)}; }
    static VecNeon set1(double x) { return {vdupq_n_f64(x)}; }
    static VecNeon load(const double *p) { return {vld1q_f64(p)}; }
    void store(double *p) const { vst1q_f64(p, v); }

    friend VecNeon operator+(VecNeon a, VecNeon b)
    {
        return {vaddq_f64(a.v, b.v)};
    }
    friend VecNeon operator-(VecNeon a, VecNeon b)
    {
        return {vsubq_f64(a.v, b.v)};
    }
    friend VecNeon operator*(VecNeon a, VecNeon b)
    {
        return {vmulq_f64(a.v, b.v)};
    }
    friend VecNeon operator/(VecNeon a, VecNeon b)
    {
        return {vdivq_f64(a.v, b.v)};
    }

    static void load2(const double *p, VecNeon &even, VecNeon &odd)
    {
        const float64x2x2_t t = vld2q_f64(p);
        even.v = t.val[0];
        odd.v = t.val[1];
    }

    static void store2(double *p, VecNeon even, VecNeon odd)
    {
        const float64x2x2_t t{{even.v, odd.v}};
        vst2q_f64(p, t);
    }

    static VecNeon floorv(VecNeon a) { return {vrndmq_f64(a.v)}; }

    static unsigned ltMask(VecNeon a, VecNeon b)
    {
        const uint64x2_t m = vcltq_f64(a.v, b.v);
        return static_cast<unsigned>((vgetq_lane_u64(m, 0) & 1u) |
                                     ((vgetq_lane_u64(m, 1) & 1u) << 1));
    }

    static unsigned gtMask(VecNeon a, VecNeon b)
    {
        const uint64x2_t m = vcgtq_f64(a.v, b.v);
        return static_cast<unsigned>((vgetq_lane_u64(m, 0) & 1u) |
                                     ((vgetq_lane_u64(m, 1) & 1u) << 1));
    }
};
#endif // __aarch64__ && __ARM_NEON

} // namespace didt::simd

#endif // DIDT_UTIL_SIMD_HH
