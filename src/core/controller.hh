/**
 * @file
 * dI/dt control policies (paper Sections 5.2-5.3).
 *
 * The threshold controller consumes a voltage estimate each cycle and
 * actuates the two microarchitectural knobs: stall instruction issue
 * when the estimate drops below the low control point, inject no-ops
 * when it rises above the high control point.
 *
 * Pipeline damping (Powell & Vijaykumar) is included as the
 * current-invariant baseline: it bounds the change in current over a
 * history window without estimating voltage at all.
 */

#ifndef DIDT_CORE_CONTROLLER_HH
#define DIDT_CORE_CONTROLLER_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace didt
{

/** Actuation decided for the next cycle. */
struct ControlActions
{
    bool stallIssue = false;  ///< suppress issue to cut current
    bool injectNoops = false; ///< pad idle FUs to raise current
};

/** Control-point settings for a threshold controller. */
struct ControlConfig
{
    /**
     * Tolerance between the control point and the fault level, in
     * volts (paper Figure 15's "threshold settings": a 10 mV setting
     * places the low control point at fault + 0.010 V).
     */
    Volt tolerance = 0.010;

    /** Lower fault level (nominal - 5%). */
    Volt lowFault = 0.95;

    /** Upper fault level (nominal + 5%). */
    Volt highFault = 1.05;

    /** Low control point: stall issue below this estimate. */
    Volt lowControl() const { return lowFault + tolerance; }

    /** High control point: inject no-ops above this estimate. */
    Volt highControl() const { return highFault - tolerance; }
};

/** Threshold controller driven by a voltage estimate. */
class ThresholdController
{
  public:
    /** @param config control points. */
    explicit ThresholdController(const ControlConfig &config);

    /** Flushes event counts into the controller.* metrics counters. */
    ~ThresholdController();

    /** Decide actions from this cycle's voltage estimate. */
    ControlActions decide(Volt estimated_voltage);

    /** Cycles in which either actuation was asserted. */
    std::uint64_t controlCycles() const { return controlCycles_; }

    /** Cycles with issue stalled. */
    std::uint64_t stallCycles() const { return stallCycles_; }

    /** Cycles with no-op injection. */
    std::uint64_t noopCycles() const { return noopCycles_; }

    /** The configured control points. */
    const ControlConfig &config() const { return config_; }

  private:
    ControlConfig config_;
    std::uint64_t controlCycles_ = 0;
    std::uint64_t stallCycles_ = 0;
    std::uint64_t noopCycles_ = 0;
};

/**
 * Pipeline-damping controller: maintains a current history of the
 * damping window length and bounds the cycle-to-cycle current delta.
 * If current has risen by more than @p delta over the window, issue
 * is stalled; if it has fallen by more, no-ops are injected. Cheap,
 * but voltage-blind — the source of its false positives.
 */
class PipelineDampingController
{
  public:
    /**
     * @param window history length in cycles
     * @param delta allowed current change (amperes) across the window
     */
    PipelineDampingController(std::size_t window, Amp delta);

    /** Flushes event counts into the controller.* metrics counters. */
    ~PipelineDampingController();

    /** Decide actions from this cycle's current draw. */
    ControlActions decide(Amp current);

    /** Cycles in which either actuation was asserted. */
    std::uint64_t controlCycles() const { return controlCycles_; }

  private:
    std::vector<Amp> history_;
    std::size_t head_ = 0;
    std::uint64_t pushed_ = 0;
    Amp delta_;
    std::uint64_t controlCycles_ = 0;
};

} // namespace didt

#endif // DIDT_CORE_CONTROLLER_HH
