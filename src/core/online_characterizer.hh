/**
 * @file
 * On-line wavelet dI/dt characterization.
 *
 * The paper's Section-4 estimator is an offline profiling pass. This
 * extension runs the same wavelet variance model incrementally during
 * execution: it buffers the current trace one analysis window at a
 * time and folds each completed window's Gaussian emergency estimate
 * into running exposure statistics. A runtime system can use it to
 * detect that the running program has entered a dI/dt-hazardous phase
 * (and, e.g., arm a more conservative control point) without storing
 * or post-processing any trace.
 */

#ifndef DIDT_CORE_ONLINE_CHARACTERIZER_HH
#define DIDT_CORE_ONLINE_CHARACTERIZER_HH

#include <cstdint>
#include <vector>

#include "core/variance_model.hh"
#include "util/types.hh"

namespace didt
{

/** Streaming wrapper around the wavelet voltage-variance model. */
class OnlineCharacterizer
{
  public:
    /**
     * @param model calibrated variance model (kept by reference; must
     *        outlive this object)
     * @param low_threshold voltage whose crossing probability is
     *        accumulated (paper: 0.97 V)
     * @param high_threshold upper voltage of interest
     */
    OnlineCharacterizer(const VoltageVarianceModel &model,
                        Volt low_threshold, Volt high_threshold);

    /**
     * Feed one cycle's current draw. Returns true when this push
     * completed an analysis window (estimates just updated).
     */
    bool push(Amp current);

    /** Cycles consumed so far. */
    std::uint64_t cycles() const { return cycles_; }

    /** Analysis windows completed so far. */
    std::uint64_t windows() const { return windows_; }

    /** Running mean of P(V < low threshold) across windows. */
    double exposureBelow() const;

    /** Running mean of P(V > high threshold) across windows. */
    double exposureAbove() const;

    /** The most recent completed window's estimate. */
    const WindowEstimate &lastWindow() const { return last_; }

    /**
     * P(V < low threshold) of the most recent window — the phase-
     * sensitive hazard signal a runtime would act on.
     */
    double currentHazard() const { return lastBelow_; }

    /** Reset all accumulated state. */
    void reset();

  private:
    const VoltageVarianceModel &model_;
    Volt low_;
    Volt high_;
    /** Owned analysis scratch: after the first window completes, each
     *  subsequent window is estimated without heap allocation. */
    AnalysisWorkspace ws_;
    std::vector<double> buffer_;
    std::size_t fill_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t windows_ = 0;
    double sumBelow_ = 0.0;
    double sumAbove_ = 0.0;
    double lastBelow_ = 0.0;
    WindowEstimate last_{};
};

} // namespace didt

#endif // DIDT_CORE_ONLINE_CHARACTERIZER_HH
