#include "core/cosim.hh"

#include <algorithm>
#include <memory>

#include "core/monitor.hh"
#include "core/online_characterizer.hh"
#include "obs/metrics.hh"
#include "obs/scoped_timer.hh"
#include "sim/processor.hh"
#include "util/logging.hh"
#include "workload/generator.hh"

namespace didt
{

namespace
{

/**
 * The per-cycle loop, templated on the concrete monitor type: when
 * MonitorT is one of the final monitor classes the compiler resolves
 * monitor->update() statically and inlines it, removing the per-cycle
 * virtual dispatch behind fig15/table2. Instantiated with the abstract
 * VoltageMonitor when cfg.devirtualize is off, which reproduces the
 * original per-cycle virtual path. The body is identical either way,
 * so results are bit-for-bit the same.
 *
 * The loop runs in chunks with the maxCycles budget hoisted out of the
 * inner loop; as before, the cycle that exhausts the instruction
 * stream still completes in full.
 */
template <class MonitorT>
void
runLoop(Processor &processor, SupplyStream &supply, MonitorT *monitor,
        OnlineCharacterizer *hazard, ThresholdController *threshold,
        PipelineDampingController *damping, const CosimConfig &cfg,
        const SupplyNetwork &network, const Volt low_fault,
        const Volt high_fault, const Volt low_safe, const Volt high_safe,
        CosimResult &result, double &current_sum)
{
    constexpr std::uint64_t kChunk = 256;
    ControlActions actions;
    bool running = true;
    while (running) {
        std::uint64_t chunk = kChunk;
        if (cfg.maxCycles != 0) {
            if (result.cycles >= cfg.maxCycles)
                break;
            chunk = std::min<std::uint64_t>(chunk,
                                            cfg.maxCycles - result.cycles);
        }
        for (std::uint64_t c = 0; c < chunk && running; ++c) {
            // Actuation decided from cycle n-1 observations applies
            // now.
            processor.setStallIssue(actions.stallIssue);
            processor.setInjectNoops(actions.injectNoops);

            running = processor.step();
            const Amp current = processor.lastCurrent();
            const Volt true_voltage = supply.push(current);

            ++result.cycles;
            current_sum += current;
            result.minVoltage = std::min(result.minVoltage, true_voltage);
            result.maxVoltage = std::max(result.maxVoltage, true_voltage);
            if (true_voltage < low_fault)
                ++result.lowFaults;
            if (true_voltage > high_fault)
                ++result.highFaults;

            // False positive: actuation asserted while the true
            // voltage is comfortably inside the control band.
            if ((actions.stallIssue && true_voltage > low_safe) ||
                (actions.injectNoops && true_voltage < high_safe))
                ++result.falsePositives;

            if (monitor) {
                Volt estimated = monitor->update(current, true_voltage);
                if (hazard) {
                    hazard->push(current);
                    // Hazardous phase: behave as if the control band
                    // were wider by biasing the estimate
                    // pessimistically.
                    if (hazard->currentHazard() > cfg.hazardArmLevel) {
                        if (estimated < network.config().nominalVoltage)
                            estimated -= cfg.adaptiveExtraTolerance;
                        else
                            estimated += cfg.adaptiveExtraTolerance;
                    }
                }
                actions = threshold->decide(estimated);
            } else if (damping) {
                actions = damping->decide(current);
            } else {
                actions = ControlActions{};
            }
        }
    }
}

} // namespace

const char *
controlSchemeName(ControlScheme scheme)
{
    switch (scheme) {
      case ControlScheme::None: return "none";
      case ControlScheme::Wavelet: return "wavelet";
      case ControlScheme::FullConvolution: return "full-convolution";
      case ControlScheme::AnalogSensor: return "analog-sensor";
      case ControlScheme::PipelineDamping: return "pipeline-damping";
      case ControlScheme::AdaptiveWavelet: return "adaptive-wavelet";
    }
    didt_panic("unknown control scheme");
}

CosimResult
runClosedLoop(const BenchmarkProfile &profile, const ProcessorConfig &proc,
              const PowerModelConfig &power, const SupplyNetwork &network,
              const CosimConfig &cfg)
{
    obs::ScopedTimer span(std::string("cosim ") +
                              controlSchemeName(cfg.scheme),
                          obs::Histogram{}, nullptr, "core");
    SyntheticWorkload workload(profile, cfg.instructions, cfg.seed);
    Processor processor(proc, power, workload);
    SyntheticWorkload warm_source(profile, 0, cfg.seed + 0xDEADBEEF);
    processor.warmupFootprint(workload.dataFootprint(),
                              workload.codeFootprint());
    processor.warmup(warm_source, 150000);
    SupplyStream supply(network);

    std::unique_ptr<VoltageMonitor> monitor;
    std::unique_ptr<OnlineCharacterizer> hazard;
    switch (cfg.scheme) {
      case ControlScheme::AdaptiveWavelet:
        if (cfg.hazardModel == nullptr)
            didt_fatal("AdaptiveWavelet requires cfg.hazardModel");
        hazard = std::make_unique<OnlineCharacterizer>(
            *cfg.hazardModel, network.lowFaultLevel() + 0.02,
            network.highFaultLevel() - 0.02);
        [[fallthrough]];
      case ControlScheme::Wavelet:
        monitor = std::make_unique<WaveletMonitor>(network,
                                                   cfg.waveletTerms);
        break;
      case ControlScheme::FullConvolution:
        monitor = std::make_unique<FullConvolutionMonitor>(network);
        break;
      case ControlScheme::AnalogSensor:
        monitor = std::make_unique<AnalogSensorMonitor>(network,
                                                        cfg.sensorDelay);
        break;
      case ControlScheme::None:
      case ControlScheme::PipelineDamping:
        break;
    }

    std::unique_ptr<ThresholdController> threshold;
    std::unique_ptr<PipelineDampingController> damping;
    if (monitor) {
        threshold = std::make_unique<ThresholdController>(cfg.control);
    } else if (cfg.scheme == ControlScheme::PipelineDamping) {
        damping = std::make_unique<PipelineDampingController>(
            cfg.dampingWindow, cfg.dampingDelta);
    }

    CosimResult result;
    result.scheme = controlSchemeName(cfg.scheme);
    result.minVoltage = network.config().nominalVoltage;
    result.maxVoltage = network.config().nominalVoltage;

    const Volt low_fault = network.lowFaultLevel();
    const Volt high_fault = network.highFaultLevel();
    const Volt low_safe = cfg.control.lowControl();
    const Volt high_safe = cfg.control.highControl();

    double current_sum = 0.0;
    const auto loop = [&](auto *concrete_monitor) {
        runLoop(processor, supply, concrete_monitor, hazard.get(),
                threshold.get(), damping.get(), cfg, network, low_fault,
                high_fault, low_safe, high_safe, result, current_sum);
    };
    if (!cfg.devirtualize) {
        loop(monitor.get());
    } else {
        // Monomorphize on the scheme's concrete (final) monitor class.
        switch (cfg.scheme) {
          case ControlScheme::Wavelet:
          case ControlScheme::AdaptiveWavelet:
            loop(static_cast<WaveletMonitor *>(monitor.get()));
            break;
          case ControlScheme::FullConvolution:
            loop(static_cast<FullConvolutionMonitor *>(monitor.get()));
            break;
          case ControlScheme::AnalogSensor:
            loop(static_cast<AnalogSensorMonitor *>(monitor.get()));
            break;
          case ControlScheme::None:
          case ControlScheme::PipelineDamping:
            loop(monitor.get()); // no monitor to devirtualize
            break;
        }
    }

    result.committed = processor.stats().committed;
    result.energyJ = processor.stats().totalEnergyJ;
    result.meanCurrent =
        result.cycles ? current_sum / static_cast<double>(result.cycles)
                      : 0.0;
    if (threshold) {
        result.controlCycles = threshold->controlCycles();
        result.stallCycles = threshold->stallCycles();
        result.noopCycles = threshold->noopCycles();
    } else if (damping) {
        result.controlCycles = damping->controlCycles();
        result.stallCycles = damping->controlCycles();
    }

    if (obs::metricsEnabled()) {
        auto &registry = obs::MetricsRegistry::global();
        static obs::Counter low_faults =
            registry.counter("controller.low_faults");
        static obs::Counter high_faults =
            registry.counter("controller.high_faults");
        static obs::Counter false_positives =
            registry.counter("controller.false_positives");
        low_faults.add(result.lowFaults);
        high_faults.add(result.highFaults);
        false_positives.add(result.falsePositives);
    }
    return result;
}

double
slowdown(const CosimResult &controlled, const CosimResult &baseline)
{
    if (baseline.cycles == 0)
        didt_panic("baseline run executed no cycles");
    return static_cast<double>(controlled.cycles) /
               static_cast<double>(baseline.cycles) -
           1.0;
}

} // namespace didt
