#include "core/online_characterizer.hh"

#include "util/logging.hh"

namespace didt
{

OnlineCharacterizer::OnlineCharacterizer(const VoltageVarianceModel &model,
                                         Volt low_threshold,
                                         Volt high_threshold)
    : model_(model), low_(low_threshold), high_(high_threshold)
{
    if (!model_.calibrated())
        didt_fatal("OnlineCharacterizer requires a calibrated model");
    buffer_.assign(model_.windowLength(), 0.0);
}

bool
OnlineCharacterizer::push(Amp current)
{
    buffer_[fill_++] = current;
    ++cycles_;
    if (fill_ < buffer_.size())
        return false;

    fill_ = 0;
    model_.estimate(buffer_, {}, true, last_, ws_);
    lastBelow_ = last_.probBelow(low_);
    sumBelow_ += lastBelow_;
    sumAbove_ += last_.probAbove(high_);
    ++windows_;
    return true;
}

double
OnlineCharacterizer::exposureBelow() const
{
    return windows_ ? sumBelow_ / static_cast<double>(windows_) : 0.0;
}

double
OnlineCharacterizer::exposureAbove() const
{
    return windows_ ? sumAbove_ / static_cast<double>(windows_) : 0.0;
}

void
OnlineCharacterizer::reset()
{
    fill_ = 0;
    cycles_ = 0;
    windows_ = 0;
    sumBelow_ = 0.0;
    sumAbove_ = 0.0;
    lastBelow_ = 0.0;
    last_ = WindowEstimate{};
}

} // namespace didt
