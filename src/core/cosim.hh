/**
 * @file
 * Closed-loop co-simulation: processor + supply network + monitor +
 * controller (paper Section 5.3, Figure 15, Table 2).
 *
 * Each cycle the processor draws current, the supply network produces
 * the true voltage, the selected monitor produces an estimate, and the
 * controller's actuation (stall issue / inject no-ops) is applied to
 * the processor for the next cycle. The harness accounts voltage
 * faults, false positives, control activity, and performance.
 */

#ifndef DIDT_CORE_COSIM_HH
#define DIDT_CORE_COSIM_HH

#include <cstdint>
#include <string>

#include "core/controller.hh"
#include "core/variance_model.hh"
#include "power/supply_network.hh"
#include "sim/config.hh"
#include "sim/power_model.hh"
#include "util/types.hh"
#include "workload/profile.hh"

namespace didt
{

/** Control scheme selection for a closed-loop run. */
enum class ControlScheme
{
    None,            ///< uncontrolled baseline
    Wavelet,         ///< wavelet-convolution monitor + thresholds
    FullConvolution, ///< full convolution monitor + thresholds
    AnalogSensor,    ///< delayed true-voltage sensor + thresholds
    PipelineDamping, ///< current-delta invariant (Powell & Vijaykumar)
    /**
     * Extension beyond the paper: the wavelet monitor plus an on-line
     * wavelet characterizer that tightens the control points only
     * while the running phase is dI/dt-hazardous, recovering the
     * optimistic thresholds' near-zero overhead on benign phases.
     */
    AdaptiveWavelet,
};

/** Scheme name for reports. */
const char *controlSchemeName(ControlScheme scheme);

/** Parameters of one closed-loop run. */
struct CosimConfig
{
    /** Instructions to execute (stream length). */
    std::uint64_t instructions = 200000;

    /** Safety cap on cycles (0 = none). */
    Cycle maxCycles = 0;

    /** Scheme under test. */
    ControlScheme scheme = ControlScheme::None;

    /** Threshold settings (for threshold-based schemes). */
    ControlConfig control{};

    /** Wavelet monitor terms (Wavelet/AdaptiveWavelet schemes). */
    std::size_t waveletTerms = 13;

    /**
     * Calibrated variance model for the AdaptiveWavelet scheme's
     * hazard detector (not owned; must outlive the run). Required for
     * that scheme, ignored otherwise.
     */
    const VoltageVarianceModel *hazardModel = nullptr;

    /** Extra tolerance applied while the phase is hazardous (V). */
    Volt adaptiveExtraTolerance = 0.015;

    /** Hazard probability that arms the conservative control point. */
    double hazardArmLevel = 0.005;

    /** Analog sensor delay in cycles (AnalogSensor scheme). */
    std::size_t sensorDelay = 4;

    /** Damping window in cycles (PipelineDamping scheme). */
    std::size_t dampingWindow = 16;

    /** Damping current delta in amperes (PipelineDamping scheme). */
    Amp dampingDelta = 12.0;

    /** Extra RNG seed fed to the workload. */
    std::uint64_t seed = 0;

    /**
     * Monomorphize the cycle loop on the concrete monitor type so the
     * per-cycle virtual dispatch disappears (the loop body is
     * otherwise identical, so results are bit-for-bit the same).
     * Disable to force the per-cycle virtual reference path — used by
     * the equivalence tests and the cosim bench rows.
     */
    bool devirtualize = true;
};

/** Results of one closed-loop run. */
struct CosimResult
{
    std::string scheme;            ///< scheme name
    Cycle cycles = 0;              ///< cycles to run the stream
    std::uint64_t committed = 0;   ///< instructions committed
    std::uint64_t lowFaults = 0;   ///< cycles with true V < low fault
    std::uint64_t highFaults = 0;  ///< cycles with true V > high fault
    std::uint64_t controlCycles = 0; ///< cycles with actuation asserted
    std::uint64_t stallCycles = 0;   ///< issue-stall actuations
    std::uint64_t noopCycles = 0;    ///< no-op actuations
    /**
     * Actuations asserted while the true voltage was safely inside the
     * control band — the false-positive proxy for Table 2.
     */
    std::uint64_t falsePositives = 0;
    Volt minVoltage = 0.0;         ///< lowest true voltage seen
    Volt maxVoltage = 0.0;         ///< highest true voltage seen
    double meanCurrent = 0.0;      ///< average current draw
    double energyJ = 0.0;          ///< total energy

    /** False positives per control cycle. */
    double falsePositiveRate() const
    {
        return controlCycles ? static_cast<double>(falsePositives) /
                                   static_cast<double>(controlCycles)
                             : 0.0;
    }
};

/**
 * Run one closed-loop simulation of @p profile on @p network.
 *
 * @param profile the synthetic benchmark
 * @param proc processor configuration
 * @param power power-model configuration
 * @param network supply network (drives fault levels and monitors)
 * @param cfg run parameters
 */
CosimResult runClosedLoop(const BenchmarkProfile &profile,
                          const ProcessorConfig &proc,
                          const PowerModelConfig &power,
                          const SupplyNetwork &network,
                          const CosimConfig &cfg);

/**
 * Relative slowdown of @p controlled vs @p baseline
 * (cycles ratio - 1).
 */
double slowdown(const CosimResult &controlled, const CosimResult &baseline);

} // namespace didt

#endif // DIDT_CORE_COSIM_HH
