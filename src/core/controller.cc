#include "core/controller.hh"

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace didt
{

ThresholdController::ThresholdController(const ControlConfig &config)
    : config_(config)
{
    if (config_.lowControl() >= config_.highControl())
        didt_fatal("control window is empty: low ", config_.lowControl(),
                   " >= high ", config_.highControl());
}

ThresholdController::~ThresholdController()
{
    // One flush per controller lifetime keeps decide() metrics-free.
    if (!obs::metricsEnabled())
        return;
    auto &registry = obs::MetricsRegistry::global();
    static obs::Counter control =
        registry.counter("controller.control_cycles");
    static obs::Counter stall =
        registry.counter("controller.stall_cycles");
    static obs::Counter noop = registry.counter("controller.noop_cycles");
    control.add(controlCycles_);
    stall.add(stallCycles_);
    noop.add(noopCycles_);
}

ControlActions
ThresholdController::decide(Volt estimated_voltage)
{
    ControlActions actions;
    if (estimated_voltage < config_.lowControl())
        actions.stallIssue = true;
    else if (estimated_voltage > config_.highControl())
        actions.injectNoops = true;

    if (actions.stallIssue)
        ++stallCycles_;
    if (actions.injectNoops)
        ++noopCycles_;
    if (actions.stallIssue || actions.injectNoops)
        ++controlCycles_;
    return actions;
}

PipelineDampingController::PipelineDampingController(std::size_t window,
                                                     Amp delta)
    : history_(window, 0.0), delta_(delta)
{
    if (window == 0)
        didt_fatal("damping window must be positive");
    if (delta <= 0.0)
        didt_fatal("damping delta must be positive, got ", delta);
}

PipelineDampingController::~PipelineDampingController()
{
    if (!obs::metricsEnabled())
        return;
    static obs::Counter control = obs::MetricsRegistry::global().counter(
        "controller.damping_cycles");
    control.add(controlCycles_);
}

ControlActions
PipelineDampingController::decide(Amp current)
{
    ControlActions actions;
    if (pushed_ >= history_.size()) {
        const Amp oldest = history_[head_];
        if (current - oldest > delta_)
            actions.stallIssue = true;
        else if (oldest - current > delta_)
            actions.injectNoops = true;
    }
    history_[head_] = current;
    head_ = (head_ + 1) % history_.size();
    ++pushed_;
    if (actions.stallIssue || actions.injectNoops)
        ++controlCycles_;
    return actions;
}

} // namespace didt
