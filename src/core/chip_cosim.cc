#include "core/chip_cosim.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/monitor.hh"
#include "obs/scoped_timer.hh"
#include "util/logging.hh"
#include "wavelet/modwt.hh"
#include "workload/generator.hh"

namespace didt
{

namespace
{

/**
 * The decision history as a ring: slot(0) is the most recent
 * controller decision, slot(d) the decision from d cycles ago. Core i
 * under the Staggered scheme applies slot(i * stride).
 */
class ActionHistory
{
  public:
    explicit ActionHistory(std::size_t max_delay)
        : ring_(max_delay + 1)
    {
    }

    const ControlActions &slot(std::size_t delay) const
    {
        return ring_[(head_ + delay) % ring_.size()];
    }

    void push(const ControlActions &decided)
    {
        head_ = (head_ + ring_.size() - 1) % ring_.size();
        ring_[head_] = decided;
    }

  private:
    std::vector<ControlActions> ring_;
    std::size_t head_ = 0;
};

} // namespace

const char *
chipControlSchemeName(ChipControlScheme scheme)
{
    switch (scheme) {
      case ChipControlScheme::None: return "chip-none";
      case ChipControlScheme::Independent: return "chip-independent";
      case ChipControlScheme::Staggered: return "chip-staggered";
    }
    didt_panic("unknown chip control scheme");
}

ChipCosimResult
runChipClosedLoop(const std::vector<ChipWorkload> &workloads,
                  const ExperimentSetup &setup,
                  const SupplyNetwork &network, const ChipCosimConfig &cfg,
                  ChipConfig chip)
{
    if (workloads.empty())
        didt_fatal("runChipClosedLoop needs at least one workload");
    obs::ScopedTimer span(std::string("chip-cosim ") +
                              chipControlSchemeName(cfg.scheme),
                          obs::Histogram{}, nullptr, "core");

    chip.cores = workloads.size();
    chip.core = setup.proc;

    std::vector<std::unique_ptr<SyntheticWorkload>> streams;
    streams.reserve(workloads.size());
    std::vector<InstructionSource *> sources;
    sources.reserve(workloads.size());
    for (const ChipWorkload &w : workloads) {
        if (w.profile == nullptr)
            didt_fatal("chip workload has no profile");
        streams.push_back(std::make_unique<SyntheticWorkload>(
            *w.profile, cfg.instructions, w.seed));
        sources.push_back(streams.back().get());
    }

    Chip machine(chip, setup.power, sources);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        SyntheticWorkload warm_source(*workloads[i].profile, 0,
                                      workloads[i].seed + 0xDEADBEEF);
        machine.core(i).warmupFootprint(streams[i]->dataFootprint(),
                                        streams[i]->codeFootprint());
        machine.core(i).warmup(warm_source, 150000);
    }
    machine.clearSharedStats();

    SupplyStream supply(network);
    std::unique_ptr<WaveletMonitor> monitor;
    std::unique_ptr<ThresholdController> threshold;
    if (cfg.scheme != ChipControlScheme::None) {
        monitor = std::make_unique<WaveletMonitor>(network,
                                                   cfg.waveletTerms);
        threshold = std::make_unique<ThresholdController>(cfg.control);
    }

    // Stagger stride: spread N actuation phases over one resonant
    // period, so the per-core actuation current steps cancel at the
    // resonance instead of adding. Core 0 is never delayed — with one
    // core both schemes collapse to the uniprocessor controller.
    const std::size_t cores = workloads.size();
    std::size_t stride = cfg.staggerStride;
    if (stride == 0) {
        const double period_cycles =
            network.config().clockHz / network.config().resonantHz;
        stride = std::max<std::size_t>(
            1, static_cast<std::size_t>(period_cycles) / cores);
    }
    const bool staggered = cfg.scheme == ChipControlScheme::Staggered;
    ActionHistory history(staggered ? stride * (cores - 1) : 0);

    ChipCosimResult result;
    result.scheme = chipControlSchemeName(cfg.scheme);
    result.cores = cores;
    result.minVoltage = network.config().nominalVoltage;
    result.maxVoltage = network.config().nominalVoltage;

    const Volt low_fault = network.lowFaultLevel();
    const Volt high_fault = network.highFaultLevel();
    const Volt low_safe = cfg.control.lowControl();
    const Volt high_safe = cfg.control.highControl();

    CurrentTrace aggregate;
    if (cfg.maxCycles != 0)
        reserveTraceCapacity(aggregate, cfg.maxCycles);
    double current_sum = 0.0;
    constexpr std::uint64_t kChunk = 256;
    bool running = true;
    while (running) {
        std::uint64_t chunk = kChunk;
        if (cfg.maxCycles != 0) {
            if (result.cycles >= cfg.maxCycles)
                break;
            chunk = std::min<std::uint64_t>(chunk,
                                            cfg.maxCycles - result.cycles);
        }
        for (std::uint64_t c = 0; c < chunk && running; ++c) {
            // Core i applies the decision from i*stride cycles ago
            // (delay zero everywhere under Independent).
            for (std::size_t i = 0; i < cores; ++i) {
                const ControlActions &applied =
                    history.slot(staggered ? i * stride : 0);
                machine.core(i).setStallIssue(applied.stallIssue);
                machine.core(i).setInjectNoops(applied.injectNoops);
            }
            const ControlActions &lead = history.slot(0);

            running = machine.step();
            const Amp current = machine.lastAggregateCurrent();
            const Volt true_voltage = supply.push(current);
            aggregate.push_back(current);

            ++result.cycles;
            current_sum += current;
            result.minVoltage = std::min(result.minVoltage, true_voltage);
            result.maxVoltage = std::max(result.maxVoltage, true_voltage);
            if (true_voltage < low_fault)
                ++result.lowFaults;
            if (true_voltage > high_fault)
                ++result.highFaults;

            // False positive: the lead (undelayed) actuation asserted
            // while the true voltage is inside the control band.
            if ((lead.stallIssue && true_voltage > low_safe) ||
                (lead.injectNoops && true_voltage < high_safe))
                ++result.falsePositives;

            ControlActions decided;
            if (monitor) {
                const Volt estimated =
                    monitor->update(current, true_voltage);
                decided = threshold->decide(estimated);
            }
            history.push(decided);
        }
    }

    for (std::size_t i = 0; i < cores; ++i) {
        result.committed += machine.core(i).stats().committed;
        result.energyJ += machine.core(i).stats().totalEnergyJ;
    }
    result.meanCurrent =
        result.cycles ? current_sum / static_cast<double>(result.cycles)
                      : 0.0;
    if (threshold) {
        result.controlCycles = threshold->controlCycles();
        result.stallCycles = threshold->stallCycles();
        result.noopCycles = threshold->noopCycles();
    }

    // Per-scale variance of the aggregate stimulus: the in-phase vs
    // staggered contrast shows up as energy in the resonant octave.
    if (aggregate.size() >= 64) {
        const Modwt modwt(WaveletBasis::haar());
        result.aggregateVariances =
            modwt.waveletVariance(aggregate, cfg.varianceLevels);
        // Level j spans [clock/2^(j+1), clock/2^j]; pick the octave
        // containing the resonant frequency (0-based index j-1).
        const double ratio =
            network.config().clockHz / network.config().resonantHz;
        const auto level = static_cast<std::size_t>(
            std::floor(std::log2(std::max(2.0, ratio))));
        result.resonanceLevel =
            std::min(level - 1, result.aggregateVariances.size() - 1);
    }
    return result;
}

} // namespace didt
