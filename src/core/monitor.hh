/**
 * @file
 * On-line voltage monitors (paper Section 5).
 *
 * The wavelet monitor implements the paper's contribution: the supply
 * droop is a convolution of current history with the network's impulse
 * response; expanding the history window in the Haar basis turns that
 * convolution into a weighted sum over wavelet coefficients, of which
 * only the few largest-weight terms matter (wavelet subband
 * convolution, Vaidyanathan). Coefficients are computed each cycle
 * with shift-register-style running sums (paper Figure 14), so the
 * hardware cost is a handful of adders instead of hundreds of
 * convolution taps.
 *
 * Baselines: the full-convolution monitor (Grochowski et al., HPCA-8)
 * and an idealized analog voltage sensor with a sensing delay
 * (Joseph et al., HPCA-9).
 */

#ifndef DIDT_CORE_MONITOR_HH
#define DIDT_CORE_MONITOR_HH

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "power/convolution.hh"
#include "power/supply_network.hh"
#include "util/types.hh"

namespace didt
{

/** Common interface of the per-cycle voltage monitors. */
class VoltageMonitor
{
  public:
    virtual ~VoltageMonitor() = default;

    /**
     * Advance one cycle.
     *
     * @param current this cycle's processor current draw
     * @param true_voltage the actual supply voltage this cycle (only
     *        the analog sensor may look at it; estimation monitors
     *        ignore it)
     * @return the monitor's voltage estimate for this cycle
     */
    virtual Volt update(Amp current, Volt true_voltage) = 0;

    /**
     * Advance a block of cycles at once: out[n] = the estimate for
     * cycle n. All three spans must have equal length. The default
     * loops over update(); the concrete monitors override it with a
     * devirtualized loop so open-loop trace evaluation pays one
     * virtual call per block instead of one per cycle. Results are
     * identical to calling update() cycle by cycle.
     */
    virtual void updateBlock(std::span<const Amp> current,
                             std::span<const Volt> true_voltage,
                             std::span<Volt> out);

    /** Scheme name for reports. */
    virtual const char *name() const = 0;

    /** Number of multiply/accumulate terms evaluated per cycle — the
     *  hardware-complexity proxy compared in the paper's Table 2. */
    virtual std::size_t termCount() const = 0;
};

/**
 * The paper's wavelet-convolution monitor.
 *
 * Construction projects the (time-reversed) impulse response onto the
 * Haar basis of the history window; the resulting weights are ranked
 * by magnitude and only the top K retained (paper Section 5.1). At
 * run time each retained Haar coefficient of the current history is
 * computed in O(1) from a prefix-sum shift register, multiplied by
 * its weight, and summed. A DC tail term (scaled window mean) covers
 * the response beyond the window.
 */
class WaveletMonitor final : public VoltageMonitor
{
  public:
    /**
     * @param network the supply network being tracked
     * @param terms number of wavelet convolution terms to retain
     * @param window history window length (power of two, paper: 256)
     * @param levels Haar decomposition depth (paper: 8)
     */
    WaveletMonitor(const SupplyNetwork &network, std::size_t terms,
                   std::size_t window = 256, std::size_t levels = 8);

    /**
     * Generic form: factorize an arbitrary impulse response (e.g. the
     * combined response of a MultiStageSupplyNetwork).
     *
     * @param impulse_response cycle-sampled droop response
     * @param nominal nominal supply voltage
     * @param terms number of wavelet convolution terms to retain
     * @param window history window length (power of two)
     * @param levels Haar decomposition depth
     */
    WaveletMonitor(std::span<const double> impulse_response, Volt nominal,
                   std::size_t terms, std::size_t window = 256,
                   std::size_t levels = 8);

    Volt update(Amp current, Volt true_voltage) override;
    void updateBlock(std::span<const Amp> current,
                     std::span<const Volt> true_voltage,
                     std::span<Volt> out) override;
    const char *name() const override { return "wavelet"; }
    std::size_t termCount() const override { return terms_.size(); }

    /**
     * Worst-case estimation error for any current bounded within
     * +/- @p half_swing of an arbitrary mean: the L1 norm of the
     * dropped part of the impulse response times the half swing
     * (paper Figure 13's "maximum error possible").
     */
    Volt maxError(Amp half_swing) const;

    /** One retained term of the factorized convolution. */
    struct Term
    {
        std::size_t level;  ///< 0-based detail level; levels() = approx
        std::size_t k;      ///< coefficient index within the level
        double weight;      ///< convolution weight (gamma)
    };

    /** The retained terms: approximation terms first (always kept),
     *  then detail terms in decreasing |weight| order. */
    const std::vector<Term> &terms() const { return terms_; }

  private:
    Volt nominal_;
    std::size_t window_;
    std::size_t levels_;
    std::vector<Term> terms_;
    double tailWeight_ = 0.0;     ///< sum of response beyond the window
    double droppedL1_ = 0.0;      ///< L1 norm of the dropped kernel part

    std::vector<double> cumRing_; ///< prefix sums, size window_ + 1
    std::uint64_t pushed_ = 0;
    bool primed_ = false;

    double windowSum(std::size_t u1, std::size_t u2) const;
};

/** Full time-domain convolution monitor (Grochowski et al.). */
class FullConvolutionMonitor final : public VoltageMonitor
{
  public:
    /**
     * @param network supply network being tracked
     * @param energy_fraction kernel-truncation energy retention
     */
    explicit FullConvolutionMonitor(const SupplyNetwork &network,
                                    double energy_fraction = 0.999999);

    /** Generic form over an arbitrary impulse response. */
    FullConvolutionMonitor(std::span<const double> impulse_response,
                           Volt nominal,
                           double energy_fraction = 0.999999);

    Volt update(Amp current, Volt true_voltage) override;
    void updateBlock(std::span<const Amp> current,
                     std::span<const Volt> true_voltage,
                     std::span<Volt> out) override;
    const char *name() const override { return "full-convolution"; }
    std::size_t termCount() const override { return convolver_.taps(); }

  private:
    Volt nominal_;
    StreamingConvolver convolver_;
};

/** Idealized analog voltage sensor with a fixed sensing delay. */
class AnalogSensorMonitor final : public VoltageMonitor
{
  public:
    /**
     * @param network supply network being tracked
     * @param delay_cycles sensing/processing delay
     */
    AnalogSensorMonitor(const SupplyNetwork &network,
                        std::size_t delay_cycles);

    Volt update(Amp current, Volt true_voltage) override;
    void updateBlock(std::span<const Amp> current,
                     std::span<const Volt> true_voltage,
                     std::span<Volt> out) override;
    const char *name() const override { return "analog-sensor"; }
    std::size_t termCount() const override { return 0; }

  private:
    std::vector<Volt> ring_;
    std::size_t head_ = 0;
    std::uint64_t pushed_ = 0;
};

} // namespace didt

#endif // DIDT_CORE_MONITOR_HH
