/**
 * @file
 * Chip-level closed-loop co-simulation: N cores + shared supply.
 *
 * The chip generalization of cosim.hh: every cycle the Chip's cores
 * draw current, the scaled sum drives the one shared SupplyNetwork,
 * the wavelet monitor estimates the voltage from the aggregate
 * current, and the controller's actuation is applied to the cores.
 *
 * Two chip-level control schemes are compared:
 *
 * - Independent: every core applies the controller's decision on the
 *   same cycle (the per-core-independent baseline — equivalent to
 *   broadcasting one core's controller chip-wide). All cores throttle
 *   and release together, so the actuation itself is a synchronized
 *   current step that can re-excite the package resonance.
 *
 * - Staggered: core i applies the decision stream delayed by
 *   i * stride cycles, stride = max(1, resonant period / cores). The
 *   per-core current steps caused by actuation are spread uniformly
 *   across the resonant period, so their fundamental components at
 *   the resonance cancel in the aggregate instead of adding — the
 *   desynchronization scheme evaluated in the chip-desync figure.
 *
 * A 1-core chip under either scheme reproduces the uniprocessor
 * Wavelet cosim bit-for-bit (stride delay of core 0 is zero).
 */

#ifndef DIDT_CORE_CHIP_COSIM_HH
#define DIDT_CORE_CHIP_COSIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.hh"
#include "core/experiment.hh"
#include "power/supply_network.hh"
#include "sim/chip.hh"
#include "util/types.hh"

namespace didt
{

/** Chip-level control scheme selection. */
enum class ChipControlScheme
{
    None,        ///< uncontrolled baseline
    Independent, ///< all cores actuate on the decision cycle
    Staggered,   ///< core i actuates i*stride cycles later (desync)
};

/** Scheme name for reports. */
const char *chipControlSchemeName(ChipControlScheme scheme);

/** Parameters of one chip-level closed-loop run. */
struct ChipCosimConfig
{
    /** Instructions per core (stream length). */
    std::uint64_t instructions = 200000;

    /** Safety cap on cycles (0 = none). */
    Cycle maxCycles = 0;

    /** Scheme under test. */
    ChipControlScheme scheme = ChipControlScheme::None;

    /** Threshold settings (Independent/Staggered schemes). */
    ControlConfig control{};

    /** Wavelet monitor terms. */
    std::size_t waveletTerms = 13;

    /**
     * Stagger stride in cycles between consecutive cores' actuation
     * phases (Staggered scheme). 0 derives the default: the supply's
     * resonant period divided by the core count, so N cores cover one
     * full resonant period.
     */
    std::size_t staggerStride = 0;

    /** Decomposition depth for the reported per-scale variances. */
    std::size_t varianceLevels = 8;
};

/** Results of one chip-level closed-loop run. */
struct ChipCosimResult
{
    std::string scheme;              ///< scheme name
    std::size_t cores = 0;           ///< cores on the chip
    Cycle cycles = 0;                ///< cycles to run all streams
    std::uint64_t committed = 0;     ///< instructions committed (all cores)
    std::uint64_t lowFaults = 0;     ///< cycles with true V < low fault
    std::uint64_t highFaults = 0;    ///< cycles with true V > high fault
    std::uint64_t controlCycles = 0; ///< decision cycles with actuation
    std::uint64_t stallCycles = 0;   ///< issue-stall decisions
    std::uint64_t noopCycles = 0;    ///< no-op decisions
    std::uint64_t falsePositives = 0;///< actuations inside the safe band
    Volt minVoltage = 0.0;           ///< lowest true voltage seen
    Volt maxVoltage = 0.0;           ///< highest true voltage seen
    double meanCurrent = 0.0;        ///< average aggregate current
    double energyJ = 0.0;            ///< total energy (all cores)

    /**
     * Per-scale MODWT variance of the aggregate current (haar,
     * varianceLevels levels). resonanceBandVariance() picks the level
     * whose octave contains the supply's resonant frequency.
     */
    std::vector<double> aggregateVariances;

    /** Level index (0-based) of the supply's resonant octave. */
    std::size_t resonanceLevel = 0;

    /** Aggregate-current wavelet variance in the resonant octave. */
    double resonanceBandVariance() const
    {
        return resonanceLevel < aggregateVariances.size()
                   ? aggregateVariances[resonanceLevel]
                   : 0.0;
    }
};

/**
 * Run one chip-level closed-loop simulation.
 *
 * @param workloads one profile+seed per core
 * @param setup the experiment environment (per-core machine + power)
 * @param network shared supply network driven by the aggregate current
 * @param cfg run parameters
 * @param chip chip parameters (cores is overwritten from @p workloads;
 *        core config is overwritten from @p setup)
 */
ChipCosimResult runChipClosedLoop(const std::vector<ChipWorkload> &workloads,
                                  const ExperimentSetup &setup,
                                  const SupplyNetwork &network,
                                  const ChipCosimConfig &cfg,
                                  ChipConfig chip = {});

} // namespace didt

#endif // DIDT_CORE_CHIP_COSIM_HH
