#include "core/experiment.hh"

#include <memory>

#include "power/stimulus.hh"
#include "sim/processor.hh"
#include "util/logging.hh"
#include "workload/generator.hh"
#include "workload/virus.hh"

namespace didt
{

SupplyNetwork
ExperimentSetup::makeNetwork(double impedance_scale) const
{
    SupplyNetworkConfig cfg = supplyBase;
    cfg.impedanceScale = impedance_scale;
    return SupplyNetwork(cfg);
}

ExperimentSetup
makeStandardSetup()
{
    ExperimentSetup setup;

    const PowerModel model(setup.power, setup.proc);
    setup.idleCurrent = model.idlePower() / setup.proc.nominalVoltage;
    setup.peakCurrent = model.peakPower() / setup.proc.nominalVoltage;

    setup.supplyBase.clockHz = setup.proc.clockHz;
    setup.supplyBase.nominalVoltage = setup.proc.nominalVoltage;

    setup.supplyBase =
        calibrateTargetImpedance(setup.supplyBase, virusCurrentTrace(setup));
    return setup;
}

CurrentTrace
virusCurrentTrace(const ExperimentSetup &setup, std::size_t cycles)
{
    DiDtVirus virus = DiDtVirus::tunedFor(
        setup.proc.clockHz, setup.supplyBase.resonantHz,
        static_cast<std::uint32_t>(setup.proc.fetchWidth),
        static_cast<std::uint32_t>(setup.proc.intDivLatency));
    Processor processor(setup.proc, setup.power, virus);
    CurrentTrace trace;
    // The first pass over the virus loop suffers cold-start cache
    // misses (its code region streams in from memory); collect well
    // past that and keep only the locked steady-state tail.
    processor.collectTrace(trace, 2 * cycles + 40000);
    if (trace.size() > cycles)
        trace.erase(trace.begin(), trace.begin() +
                                       static_cast<long>(trace.size() -
                                                         cycles));
    return trace;
}

std::vector<std::function<CurrentTrace()>>
calibrationTraceBuilders(const ExperimentSetup &setup)
{
    std::vector<std::function<CurrentTrace()>> builders;

    // Virus variants: on-resonance plus detuned periods, sweeping the
    // excitation frequency through and around the resonant band.
    for (double detune : {0.5, 0.75, 1.0, 1.5, 2.5}) {
        builders.push_back([&setup, detune] {
            DiDtVirus virus = DiDtVirus::tunedFor(
                setup.proc.clockHz, setup.supplyBase.resonantHz * detune,
                static_cast<std::uint32_t>(setup.proc.fetchWidth),
                static_cast<std::uint32_t>(setup.proc.intDivLatency));
            Processor processor(setup.proc, setup.power, virus);
            CurrentTrace trace;
            processor.collectTrace(trace, 60000);
            trace.erase(trace.begin(), trace.begin() + 40000);
            return trace;
        });
    }

    // Generic synthetic workloads spanning the behaviour space; these
    // parameter points are distinct from every named SPEC profile.
    auto add_profile = [&](const char *name, WorkloadPhase phase,
                           std::uint64_t seed) {
        BenchmarkProfile prof;
        prof.name = name;
        prof.codeBytes = 64 * 1024;
        phase.lengthInsts = 100000;
        prof.phases = {phase};
        prof.seed = seed;
        builders.push_back([&setup, prof = std::move(prof)] {
            return benchmarkCurrentTrace(setup, prof, 40000, 17);
        });
    };

    WorkloadPhase compute;
    compute.hotProb = 1.0;
    compute.warmProb = 0.0;
    add_profile("cal-compute", compute, 501);

    WorkloadPhase osc;
    osc.loadFrac = 0.04;
    osc.storeFrac = 0.08;
    osc.branchFrac = 0.05;
    osc.hotProb = 0.06;
    osc.warmProb = 0.92;
    osc.chaseProb = 1.0;
    osc.gateOnLoadProb = 1.0;
    add_profile("cal-osc", osc, 502);

    WorkloadPhase osc_soft = osc;
    osc_soft.loadFrac = 0.09;
    osc_soft.gateOnLoadProb = 0.5;
    add_profile("cal-osc-soft", osc_soft, 503);

    WorkloadPhase mem;
    mem.loadFrac = 0.33;
    mem.hotProb = 0.55;
    mem.warmProb = 0.28;
    mem.chaseProb = 0.7;
    add_profile("cal-mem", mem, 504);

    WorkloadPhase mixed;
    mixed.hotProb = 0.80;
    mixed.warmProb = 0.18;
    mixed.chaseProb = 0.15;
    add_profile("cal-mixed", mixed, 505);

    return builders;
}

std::vector<CurrentTrace>
calibrationTraces(const ExperimentSetup &setup)
{
    std::vector<CurrentTrace> traces;
    for (const auto &builder : calibrationTraceBuilders(setup))
        traces.push_back(builder());
    return traces;
}

VoltageVarianceModel
makeCalibratedModel(const ExperimentSetup &setup,
                    const SupplyNetwork &network,
                    std::size_t window_length, std::size_t levels,
                    WaveletBasis basis)
{
    VoltageVarianceModel model(network, window_length, levels,
                               std::move(basis));
    const std::vector<CurrentTrace> traces = calibrationTraces(setup);
    model.calibrateOnTraces(traces);
    return model;
}

CurrentTrace
benchmarkCurrentTrace(const ExperimentSetup &setup,
                      const BenchmarkProfile &profile,
                      std::uint64_t instructions, std::uint64_t seed,
                      std::size_t trim_warmup,
                      const SamplingConfig &sampling)
{
    SyntheticWorkload workload(profile, instructions, seed);
    Processor processor(setup.proc, setup.power, workload);

    // SimPoint-style warm start: prime caches and predictor with a
    // separate stream from the same profile before timing.
    SyntheticWorkload warm_source(profile, 0, seed + 0xDEADBEEF);
    processor.warmupFootprint(workload.dataFootprint(),
                              workload.codeFootprint());
    processor.warmup(warm_source, 150000);

    CurrentTrace trace;
    // A generous cap: even fully memory-bound streams rarely exceed
    // ~40 cycles per instruction on this machine.
    const Cycle cap = 64 * instructions + 100000;
    if (sampling.enabled())
        processor.collectTraceSampled(trace, cap, sampling);
    else
        processor.collectTrace(trace, cap);

    if (trace.size() > trim_warmup + 1024)
        trace.erase(trace.begin(),
                    trace.begin() + static_cast<long>(trim_warmup));
    return trace;
}

TraceSet
chipCurrentTrace(const ExperimentSetup &setup,
                 const std::vector<ChipWorkload> &workloads,
                 std::uint64_t instructions, std::size_t trim_warmup,
                 ChipConfig chip, const SamplingConfig &sampling)
{
    if (workloads.empty())
        didt_fatal("chipCurrentTrace needs at least one workload");
    chip.cores = workloads.size();
    chip.core = setup.proc;

    // Sources must outlive the chip: each Core keeps a reference.
    std::vector<std::unique_ptr<SyntheticWorkload>> streams;
    streams.reserve(workloads.size());
    std::vector<InstructionSource *> sources;
    sources.reserve(workloads.size());
    for (const ChipWorkload &w : workloads) {
        if (w.profile == nullptr)
            didt_fatal("chip workload has no profile");
        streams.push_back(std::make_unique<SyntheticWorkload>(
            *w.profile, instructions, w.seed));
        sources.push_back(streams.back().get());
    }

    Chip machine(chip, setup.power, sources);

    // Per-core SimPoint-style warm start, identical to the
    // uniprocessor protocol in benchmarkCurrentTrace. Each core's
    // warmup() clears the shared-L2 statistics on completion, so after
    // the last core both the L2 counters and every core's miss
    // baseline sit at zero.
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        SyntheticWorkload warm_source(*workloads[i].profile, 0,
                                      workloads[i].seed + 0xDEADBEEF);
        machine.core(i).warmupFootprint(streams[i]->dataFootprint(),
                                        streams[i]->codeFootprint());
        machine.core(i).warmup(warm_source, 150000);
    }
    machine.clearSharedStats();

    TraceSet set;
    const Cycle cap = 64 * instructions + 100000;
    if (sampling.enabled())
        machine.collectTracesSampled(set.perCore, set.aggregate, cap,
                                     sampling);
    else
        machine.collectTraces(set.perCore, set.aggregate, cap);

    if (set.aggregate.size() > trim_warmup + 1024) {
        set.aggregate.erase(
            set.aggregate.begin(),
            set.aggregate.begin() + static_cast<long>(trim_warmup));
        for (CurrentTrace &trace : set.perCore)
            trace.erase(trace.begin(),
                        trace.begin() + static_cast<long>(trim_warmup));
    }
    return set;
}

} // namespace didt
