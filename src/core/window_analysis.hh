/**
 * @file
 * Gaussian window classification (paper Section 4.1, Figures 6/7/12).
 *
 * Samples fixed-size execution windows at random offsets from a
 * per-cycle trace, classifies each with the chi-square normality test
 * at 95% significance, and summarizes acceptance rates and the
 * variance split between Gaussian and non-Gaussian windows.
 */

#ifndef DIDT_CORE_WINDOW_ANALYSIS_HH
#define DIDT_CORE_WINDOW_ANALYSIS_HH

#include <cstddef>
#include <span>

#include "util/rng.hh"
#include "util/types.hh"

namespace didt
{

/** Summary of a window-classification experiment over one trace. */
struct WindowGaussianSummary
{
    std::size_t windows = 0;        ///< windows sampled
    std::size_t accepted = 0;       ///< windows accepted as Gaussian
    double meanVarianceGaussian = 0.0;    ///< mean in-window variance
    double meanVarianceNonGaussian = 0.0; ///< mean variance of rejects
    double overallVariance = 0.0;   ///< variance of the whole trace

    /** Fraction of windows accepted as Gaussian. */
    double acceptanceRate() const
    {
        return windows ? static_cast<double>(accepted) /
                             static_cast<double>(windows)
                       : 0.0;
    }
};

/**
 * Classify @p num_windows windows of @p window_size cycles drawn at
 * random offsets of @p trace (paper: "we chose these windows at random
 * intervals throughout the execution").
 *
 * @param trace per-cycle samples (current or voltage)
 * @param window_size window length in cycles (paper: 32/64/128)
 * @param num_windows windows to sample
 * @param rng randomness for offsets
 * @param alpha chi-square significance (paper: 0.05)
 */
WindowGaussianSummary classifyWindows(std::span<const double> trace,
                                      std::size_t window_size,
                                      std::size_t num_windows, Rng &rng,
                                      double alpha = 0.05);

} // namespace didt

#endif // DIDT_CORE_WINDOW_ANALYSIS_HH
