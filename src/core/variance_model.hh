/**
 * @file
 * The wavelet voltage-variance model (paper Section 4.1).
 *
 * Relates per-scale current variance (via Parseval over wavelet detail
 * coefficients) and adjacent-coefficient correlation (the pulse-
 * pattern detector) to the voltage variance the supply network will
 * produce, through per-scale multiplicative factors. Factors are
 * obtained exactly as the paper describes: "we performed a series of
 * experiments that allowed us to isolate the effects that wavelet
 * variance and correlation had on each detail scale level" — here, a
 * calibration pass regresses per-scale variance gains (with lag-1 and
 * lag-2 coefficient-correlation corrections) against the measured
 * voltage variance of training stimuli, either synthesized waveforms
 * (calibrate) or current traces of microbenchmarks running on the
 * processor model (calibrateOnTraces).
 */

#ifndef DIDT_CORE_VARIANCE_MODEL_HH
#define DIDT_CORE_VARIANCE_MODEL_HH

#include <cstddef>
#include <span>
#include <vector>

#include "power/supply_network.hh"
#include "stats/gaussian.hh"
#include "util/rng.hh"
#include "wavelet/dwt.hh"
#include "wavelet/flat_decomposition.hh"
#include "wavelet/wavelet_stats.hh"

namespace didt
{

/** Per-window voltage estimate produced by the model. */
struct WindowEstimate
{
    Volt mean = 0.0;           ///< estimated voltage mean (IR drop)
    double variance = 0.0;     ///< estimated voltage variance
    /** Per-detail-level variance contribution (finest first), followed
     *  by the approximation level's contribution. */
    std::vector<double> contributions;

    /** Gaussian-model probability that the voltage is below @p level. */
    double probBelow(Volt level) const;

    /** Gaussian-model probability that the voltage is above @p level. */
    double probAbove(Volt level) const;
};

/**
 * Reusable scratch for the analysis pipeline (estimate, calibration,
 * trace profiling). All buffers grow to the high-water mark of the
 * windows they process and are then reused allocation-free, so one
 * workspace per worker thread makes the per-window hot path free of
 * heap traffic. Plain value type, owned by exactly one thread at a
 * time (see DESIGN.md section 10).
 */
struct AnalysisWorkspace
{
    DwtWorkspace dwt;           ///< pyramid ping/pong scratch
    FlatDecomposition dec;      ///< per-window decomposition
    ScaleStats stats;           ///< per-scale statistics
    WindowEstimate est;         ///< per-window estimate scratch
    std::vector<char> selected; ///< detail-level selection mask
    std::vector<double> row;    ///< regression feature row
    CurrentTrace tiled;         ///< tiled calibration stimulus
    VoltageTrace voltage;       ///< supply-network response scratch
};

/** The calibrated per-scale variance-gain model. */
class VoltageVarianceModel
{
  public:
    /**
     * @param network supply network to model (kept by reference; must
     *        outlive this object)
     * @param window_length analysis window in cycles (paper: 256)
     * @param levels wavelet decomposition depth (paper: 8)
     * @param basis wavelet basis (paper: Haar; others for ablation)
     */
    VoltageVarianceModel(const SupplyNetwork &network,
                         std::size_t window_length = 256,
                         std::size_t levels = 8,
                         WaveletBasis basis = WaveletBasis::haar());

    /**
     * Calibrate the per-scale factors by least-squares regression on
     * an ensemble of processor-like stimuli (white issue noise, pulse
     * trains, steps, slow drifts) against the measured voltage
     * variance — the paper's "series of experiments".
     *
     * @param rng randomness for stimulus generation
     * @param samples_per_point scales the ensemble size (~50x this)
     */
    void calibrate(Rng &rng, std::size_t samples_per_point = 12);

    /**
     * Calibrate by regression on windows cut from the supplied current
     * traces (typically microbenchmarks run on the processor model, so
     * the training family matches real machine behaviour). Targets are
     * the exact steady-state voltage variances of each window.
     */
    void calibrateOnTraces(std::span<const CurrentTrace> traces);

    /**
     * Analytic fallback calibration: per-scale factor from the mean
     * squared impedance over the subband's frequency range, ignoring
     * the correlation term. Used as a baseline/ablation.
     */
    void calibrateAnalytic();

    /** True once either calibration has run. */
    bool calibrated() const { return calibrated_; }

    /**
     * Estimate the voltage distribution for one current window of
     * exactly windowLength() samples (paper Section 4.1 steps 1-5).
     *
     * @param window current samples
     * @param use_levels detail levels to include (empty = all); the
     *        approximation level is always included
     * @param use_correlation include the correlation adjustment
     */
    WindowEstimate estimate(std::span<const double> window,
                            std::span<const std::size_t> use_levels = {},
                            bool use_correlation = true) const;

    /**
     * In-place overload: write the estimate into @p out using @p ws
     * for all intermediate storage. Allocation-free once the workspace
     * has warmed up; bit-identical to the allocating overload (which
     * is a thin adapter over this one).
     */
    void estimate(std::span<const double> window,
                  std::span<const std::size_t> use_levels,
                  bool use_correlation, WindowEstimate &out,
                  AnalysisWorkspace &ws) const;

    /**
     * The @p k detail levels with the largest calibrated base factors
     * — the levels nearest the resonance, whose omission the paper
     * shows costs under ~1.6% (Figure 8).
     */
    std::vector<std::size_t> topLevels(std::size_t k) const;

    /** Analysis window length in cycles. */
    std::size_t windowLength() const { return window_; }

    /** Decomposition depth. */
    std::size_t levels() const { return levels_; }

    /** Base (rho = 0) variance gain of detail level @p j. */
    double baseFactor(std::size_t j) const;

    /** Mean training-set variance contribution of detail level @p j
     *  (0 for analytic calibration, which has no training set). */
    double meanContribution(std::size_t j) const;

  private:
    /** kappa_j = c0 + c1 rho1 + c2 rho2 (lag-1/lag-2 coefficient
     *  correlations), clamped at 0. */
    struct Factor
    {
        double c0 = 0.0;
        double c1 = 0.0;
        double c2 = 0.0;

        double at(double rho1, double rho2) const;
    };

    /** Accumulated normal equations for a factor regression. */
    struct Regression
    {
        std::vector<std::vector<double>> xtx;
        std::vector<double> xty;
        std::vector<double> colSum; ///< unweighted feature sums
        std::size_t rows = 0;
        std::size_t cols = 0;
        bool hasApprox = false;
    };

    void beginRegression(Regression &reg) const;
    void accumulateWindow(Regression &reg, std::span<const double> signal,
                          AnalysisWorkspace &ws) const;
    void finishRegression(Regression &reg);

    const SupplyNetwork &network_;
    std::size_t window_;
    std::size_t levels_;
    Dwt dwt_;
    std::vector<Factor> detailFactors_; ///< one per detail level
    Factor approxFactor_;
    /** Mean per-level variance contribution over the training set;
     *  used by topLevels() to rank levels by real importance. */
    std::vector<double> meanContribution_;
    bool calibrated_ = false;

    /**
     * Measure the steady-state voltage variance produced by one
     * stimulus window: tile it periodically, convolve through the
     * network, and take the settled output variance. Tiling and the
     * network response live in @p ws.
     */
    double measureOutputVariance(std::span<const double> window_signal,
                                 AnalysisWorkspace &ws) const;
};

} // namespace didt

#endif // DIDT_CORE_VARIANCE_MODEL_HH
