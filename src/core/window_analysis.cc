#include "core/window_analysis.hh"

#include "stats/chi_square.hh"
#include "stats/running_stats.hh"
#include "util/logging.hh"

namespace didt
{

WindowGaussianSummary
classifyWindows(std::span<const double> trace, std::size_t window_size,
                std::size_t num_windows, Rng &rng, double alpha)
{
    if (window_size == 0)
        didt_panic("classifyWindows: window_size must be positive");
    if (trace.size() < window_size)
        didt_panic("classifyWindows: trace shorter (", trace.size(),
                   ") than the window (", window_size, ")");

    WindowGaussianSummary summary;
    RunningStats var_gaussian;
    RunningStats var_non_gaussian;
    RunningStats overall;
    for (double x : trace)
        overall.push(x);
    summary.overallVariance = overall.variance();

    const std::size_t max_offset = trace.size() - window_size;
    for (std::size_t w = 0; w < num_windows; ++w) {
        const std::size_t offset =
            max_offset ? rng.uniformInt(max_offset + 1) : 0;
        const auto window = trace.subspan(offset, window_size);
        const NormalityResult result =
            chiSquareNormalityTest(window, alpha);
        // The test already computed the window moments; no second pass.
        const double window_var = result.variance;
        ++summary.windows;
        if (result.accepted) {
            ++summary.accepted;
            var_gaussian.push(window_var);
        } else {
            var_non_gaussian.push(window_var);
        }
    }
    summary.meanVarianceGaussian = var_gaussian.mean();
    summary.meanVarianceNonGaussian = var_non_gaussian.mean();
    return summary;
}

} // namespace didt
