#include "core/monitor.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "wavelet/dwt.hh"
#include "wavelet/wavelet_stats.hh"

namespace didt
{

namespace
{

void
checkBlockSpans(std::span<const Amp> current,
                std::span<const Volt> true_voltage, std::span<Volt> out)
{
    if (current.size() != true_voltage.size() ||
        current.size() != out.size())
        didt_panic("updateBlock spans must have equal length: ",
                   current.size(), ", ", true_voltage.size(), ", ",
                   out.size());
}

} // namespace

void
VoltageMonitor::updateBlock(std::span<const Amp> current,
                            std::span<const Volt> true_voltage,
                            std::span<Volt> out)
{
    checkBlockSpans(current, true_voltage, out);
    for (std::size_t n = 0; n < current.size(); ++n)
        out[n] = update(current[n], true_voltage[n]);
}

WaveletMonitor::WaveletMonitor(const SupplyNetwork &network,
                               std::size_t terms, std::size_t window,
                               std::size_t levels)
    : WaveletMonitor(network.impulseResponse(),
                     network.config().nominalVoltage, terms, window,
                     levels)
{
}

WaveletMonitor::WaveletMonitor(std::span<const double> impulse_response,
                               Volt nominal, std::size_t terms,
                               std::size_t window, std::size_t levels)
    : nominal_(nominal),
      window_(window),
      levels_(levels)
{
    if (window_ == 0 || (window_ & (window_ - 1)) != 0)
        didt_fatal("WaveletMonitor window must be a power of two, got ",
                   window_);
    if (window_ % (std::size_t(1) << levels_) != 0)
        didt_fatal("window ", window_, " not divisible by 2^", levels_);
    if (terms == 0)
        didt_fatal("WaveletMonitor needs at least one term");

    // Weight derivation: droop[n] = sum_m z[m] i[n-m]. Writing the
    // chronological history window x[u] = i[n-W+1+u], the droop is the
    // inner product of x with the time-reversed impulse response, so
    // by orthonormality droop = <DWT(x), DWT(reversed z)>. The DWT of
    // the reversed response gives the weight of every coefficient.
    const std::span<const double> z = impulse_response;
    std::vector<double> reversed(window_, 0.0);
    for (std::size_t m = 0; m < window_ && m < z.size(); ++m)
        reversed[window_ - 1 - m] = z[m];
    for (std::size_t m = window_; m < z.size(); ++m)
        tailWeight_ += z[m];

    const Dwt dwt(WaveletBasis::haar());
    const WaveletDecomposition gamma = dwt.forward(reversed, levels_);
    const std::vector<CoefficientRef> ranked = rankCoefficients(gamma);

    // The approximation terms are always retained: they carry the IR
    // drop, and the paper's shift-register implementation (Figure 14)
    // computes the approximation term explicitly alongside the detail
    // terms. Remaining slots are filled by decreasing |weight|.
    const std::size_t keep = std::min(terms, ranked.size());
    terms_.reserve(keep);
    for (std::size_t k = 0; k < gamma.approximation.size() && terms_.size() < keep; ++k)
        terms_.push_back(Term{levels_, k, gamma.approximation[k]});
    for (const CoefficientRef &ref : ranked) {
        if (terms_.size() >= keep)
            break;
        if (ref.level == CoefficientRef::kApproximation)
            continue;
        terms_.push_back(Term{ref.level, ref.index, ref.value});
    }

    // Worst-case error: reconstruct the kept part of the kernel and
    // take the L1 norm of what was dropped.
    WaveletDecomposition kept = gamma;
    for (auto &lvl : kept.details)
        std::fill(lvl.begin(), lvl.end(), 0.0);
    std::fill(kept.approximation.begin(), kept.approximation.end(), 0.0);
    for (const Term &t : terms_) {
        if (t.level == levels_)
            kept.approximation[t.k] = gamma.approximation[t.k];
        else
            kept.details[t.level][t.k] = gamma.details[t.level][t.k];
    }
    const std::vector<double> kept_kernel = dwt.inverse(kept);
    droppedL1_ = 0.0;
    for (std::size_t u = 0; u < window_; ++u)
        droppedL1_ += std::fabs(reversed[u] - kept_kernel[u]);

    cumRing_.assign(window_ + 1, 0.0);
}

double
WaveletMonitor::windowSum(std::size_t u1, std::size_t u2) const
{
    // The window is x[u] = i[n - W + 1 + u] with n = pushed_ - 1, so
    // the sum over [u1, u2) is C[n - W + u2] - C[n - W + u1].
    const std::size_t ring = window_ + 1;
    const std::uint64_t n = pushed_ - 1;
    const std::uint64_t hi = n - window_ + u2;
    const std::uint64_t lo = n - window_ + u1;
    return cumRing_[hi % ring] - cumRing_[lo % ring];
}

Volt
WaveletMonitor::update(Amp current, Volt /* true_voltage */)
{
    const std::size_t ring = window_ + 1;
    if (!primed_) {
        // Steady-state warm start: history as if `current` flowed
        // forever. Prefix sums become an arithmetic ramp.
        for (std::size_t k = 0; k < ring; ++k)
            cumRing_[k] = 0.0;
        // C[-1] = 0 at slot (ring - 1); we will immediately overwrite
        // slots as pushes come in; simulate W prior pushes of
        // `current`.
        pushed_ = 0;
        double cum = 0.0;
        for (std::size_t k = 0; k < window_; ++k) {
            cum += current;
            cumRing_[pushed_ % ring] = cum;
            ++pushed_;
        }
        primed_ = true;
    }

    const double prev = cumRing_[(pushed_ + ring - 1) % ring];
    cumRing_[pushed_ % ring] = prev + current;
    ++pushed_;

    double droop = 0.0;
    for (const Term &t : terms_) {
        double coeff;
        if (t.level == levels_) {
            const std::size_t s = std::size_t(1) << levels_;
            const std::size_t base = t.k * s;
            coeff = windowSum(base, base + s) /
                    std::sqrt(static_cast<double>(s));
        } else {
            const std::size_t s = std::size_t(1) << (t.level + 1);
            const std::size_t base = t.k * s;
            const double first = windowSum(base, base + s / 2);
            const double second = windowSum(base + s / 2, base + s);
            coeff = (first - second) / std::sqrt(static_cast<double>(s));
        }
        droop += t.weight * coeff;
    }

    // Response tail beyond the window: approximate the older history
    // by the window mean.
    droop += tailWeight_ * windowSum(0, window_) /
             static_cast<double>(window_);

    return nominal_ - droop;
}

void
WaveletMonitor::updateBlock(std::span<const Amp> current,
                            std::span<const Volt> true_voltage,
                            std::span<Volt> out)
{
    checkBlockSpans(current, true_voltage, out);
    // The qualified call on a final class devirtualizes and inlines:
    // one virtual dispatch per block instead of per cycle.
    for (std::size_t n = 0; n < current.size(); ++n)
        out[n] = WaveletMonitor::update(current[n], true_voltage[n]);
}

Volt
WaveletMonitor::maxError(Amp half_swing) const
{
    return droppedL1_ * half_swing;
}

FullConvolutionMonitor::FullConvolutionMonitor(const SupplyNetwork &network,
                                               double energy_fraction)
    : FullConvolutionMonitor(network.impulseResponse(),
                             network.config().nominalVoltage,
                             energy_fraction)
{
}

FullConvolutionMonitor::FullConvolutionMonitor(
    std::span<const double> impulse_response, Volt nominal,
    double energy_fraction)
    : nominal_(nominal),
      convolver_(truncateKernel(impulse_response, energy_fraction))
{
}

Volt
FullConvolutionMonitor::update(Amp current, Volt /* true_voltage */)
{
    convolver_.push(current);
    return nominal_ - convolver_.value();
}

void
FullConvolutionMonitor::updateBlock(std::span<const Amp> current,
                                    std::span<const Volt> true_voltage,
                                    std::span<Volt> out)
{
    checkBlockSpans(current, true_voltage, out);
    for (std::size_t n = 0; n < current.size(); ++n)
        out[n] = FullConvolutionMonitor::update(current[n],
                                                true_voltage[n]);
}

AnalogSensorMonitor::AnalogSensorMonitor(const SupplyNetwork &network,
                                         std::size_t delay_cycles)
    : ring_(std::max<std::size_t>(1, delay_cycles + 1),
            network.config().nominalVoltage)
{
}

Volt
AnalogSensorMonitor::update(Amp /* current */, Volt true_voltage)
{
    ring_[head_] = true_voltage;
    head_ = (head_ + 1) % ring_.size();
    ++pushed_;
    // The oldest entry in the ring is the delayed reading.
    return ring_[head_ % ring_.size()];
}

void
AnalogSensorMonitor::updateBlock(std::span<const Amp> current,
                                 std::span<const Volt> true_voltage,
                                 std::span<Volt> out)
{
    checkBlockSpans(current, true_voltage, out);
    for (std::size_t n = 0; n < current.size(); ++n)
        out[n] = AnalogSensorMonitor::update(current[n], true_voltage[n]);
}

} // namespace didt
