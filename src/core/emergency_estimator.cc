#include "core/emergency_estimator.hh"

#include "obs/scoped_timer.hh"
#include "stats/running_stats.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace didt
{

EmergencyProfile
profileTrace(const CurrentTrace &trace, const SupplyNetwork &network,
             const VoltageVarianceModel &model, Volt low_threshold,
             Volt high_threshold, std::span<const std::size_t> use_levels,
             bool use_correlation)
{
    AnalysisWorkspace ws;
    return profileTrace(trace, network, model, low_threshold,
                        high_threshold, ws, use_levels, use_correlation);
}

EmergencyProfile
profileTrace(const CurrentTrace &trace, const SupplyNetwork &network,
             const VoltageVarianceModel &model, Volt low_threshold,
             Volt high_threshold, AnalysisWorkspace &ws,
             std::span<const std::size_t> use_levels, bool use_correlation)
{
    const std::size_t window = model.windowLength();
    if (trace.size() < window)
        didt_panic("profileTrace: trace shorter than one window");
    obs::ScopedTimer span("model.profile_trace", obs::Histogram{},
                          nullptr, "core");

    EmergencyProfile profile;

    // Estimated side: consecutive windows, each contributing its
    // Gaussian tail probabilities (window-weighted average equals the
    // predicted fraction of cycles).
    RunningStats est_below;
    RunningStats est_above;
    RunningStats est_var;
    const std::span<const double> samples(trace.data(), trace.size());
    for (std::size_t off = 0; off + window <= trace.size(); off += window) {
        model.estimate(samples.subspan(off, window), use_levels,
                       use_correlation, ws.est, ws);
        est_below.push(ws.est.probBelow(low_threshold));
        est_above.push(ws.est.probAbove(high_threshold));
        est_var.push(ws.est.variance);
        ++profile.windows;
    }
    profile.estimatedBelow = est_below.mean();
    profile.estimatedAbove = est_above.mean();
    profile.estimatedVariance = est_var.mean();

    // Measured side: exact convolution through the network. Threshold
    // counts are order-independent integers, so they go through the
    // SIMD kernel; the Welford variance recurrence is a sequential
    // reduction and stays scalar to keep its rounding exact.
    network.computeVoltageInto(trace, ws.voltage);
    std::uint64_t below = 0;
    std::uint64_t above = 0;
    simd::kernels().thresholdCounts(ws.voltage.data(), ws.voltage.size(),
                                    low_threshold, high_threshold, &below,
                                    &above);
    RunningStats v_stats;
    for (Volt v : ws.voltage)
        v_stats.push(v);
    profile.measuredBelow =
        static_cast<double>(below) / static_cast<double>(ws.voltage.size());
    profile.measuredAbove =
        static_cast<double>(above) / static_cast<double>(ws.voltage.size());
    profile.measuredVariance = v_stats.variance();
    return profile;
}

} // namespace didt
