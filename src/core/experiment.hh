/**
 * @file
 * Shared experiment environment for benches, examples, and
 * integration tests.
 *
 * Provides the paper's standard setup: the Table-1 processor with the
 * default power budget, and a supply network whose 100% target
 * impedance is calibrated so the worst-case execution sequence (a
 * resonant square wave between the machine's idle and peak current)
 * just stays inside the +/-5% voltage band (paper Section 3.1).
 */

#ifndef DIDT_CORE_EXPERIMENT_HH
#define DIDT_CORE_EXPERIMENT_HH

#include <cstdint>
#include <functional>

#include "core/variance_model.hh"
#include "power/supply_network.hh"
#include "power/trace_io.hh"
#include "sim/chip.hh"
#include "sim/config.hh"
#include "sim/power_model.hh"
#include "util/types.hh"
#include "workload/profile.hh"

namespace didt
{

/** The standard experimental environment. */
struct ExperimentSetup
{
    /** Table-1 processor configuration. */
    ProcessorConfig proc{};

    /** Default power budget. */
    PowerModelConfig power{};

    /** Supply config with the calibrated 100% dcResistance. */
    SupplyNetworkConfig supplyBase{};

    /** Machine idle current (all structures gated). */
    Amp idleCurrent = 0.0;

    /** Machine peak current (everything switching). */
    Amp peakCurrent = 0.0;

    /**
     * Build a supply network at the given target-impedance scale
     * (1.0 = 100%, 1.5 = 150%, ...).
     */
    SupplyNetwork makeNetwork(double impedance_scale) const;
};

/**
 * Construct and calibrate the standard setup. Deterministic; the
 * calibration stimulus is the worst-case resonant square wave between
 * idle and peak current.
 */
ExperimentSetup makeStandardSetup();

/**
 * Current trace of the dI/dt stressmark (virus) running on the
 * standard machine: the achievable worst-case execution sequence used
 * for target-impedance calibration.
 */
CurrentTrace virusCurrentTrace(const ExperimentSetup &setup,
                               std::size_t cycles = 16384);

/**
 * Current traces of the calibration microbenchmark suite: dI/dt virus
 * variants at several burst/stall tunings plus generic synthetic
 * workloads spanning the compute / L2-oscillation / memory-bound
 * space. Used to train the voltage-variance model; deliberately
 * disjoint from the 26 named SPEC profiles used for evaluation.
 */
std::vector<CurrentTrace>
calibrationTraces(const ExperimentSetup &setup);

/**
 * The calibration suite as deferred per-trace builders, so campaign
 * drivers can generate the training set in parallel. Builders are
 * independent and safe to run concurrently; each captures @p setup by
 * reference, which must outlive them. Running every builder in order
 * yields exactly calibrationTraces(setup).
 */
std::vector<std::function<CurrentTrace()>>
calibrationTraceBuilders(const ExperimentSetup &setup);

/**
 * Build a VoltageVarianceModel for @p network calibrated on the
 * microbenchmark suite (paper Section 4.1's factor-derivation
 * experiments).
 *
 * @param setup the experiment environment
 * @param network the supply network the model is bound to; must
 *        outlive the returned model
 * @param window_length analysis window (paper: 256)
 * @param levels decomposition depth (paper: 8)
 */
VoltageVarianceModel
makeCalibratedModel(const ExperimentSetup &setup,
                    const SupplyNetwork &network,
                    std::size_t window_length = 256,
                    std::size_t levels = 8,
                    WaveletBasis basis = WaveletBasis::haar());

/**
 * Run @p profile on the standard machine and return its per-cycle
 * current trace.
 *
 * @param setup the experiment environment
 * @param profile benchmark to run
 * @param instructions dynamic instruction count
 * @param seed extra workload seed
 * @param trim_warmup cycles dropped from the front (cold caches)
 * @param sampling optional SimPoint-style sampling; the disabled
 *        default runs full detail and is byte-identical to the
 *        historical signature
 */
CurrentTrace benchmarkCurrentTrace(const ExperimentSetup &setup,
                                   const BenchmarkProfile &profile,
                                   std::uint64_t instructions,
                                   std::uint64_t seed = 0,
                                   std::size_t trim_warmup = 4096,
                                   const SamplingConfig &sampling = {});

/** Per-core program assignment for one chip-level run. */
struct ChipWorkload
{
    const BenchmarkProfile *profile; ///< benchmark this core runs
    std::uint64_t seed = 0;          ///< this core's stream seed
};

/**
 * Run a multi-program chip and return its per-core + aggregate current
 * traces. Each core gets the exact warm-up protocol of
 * benchmarkCurrentTrace (footprint touch plus 150k-instruction warm
 * stream), the run is capped identically, and the warm-up trim is
 * applied to the aggregate and every per-core trace alike — so a
 * 1-core chip reproduces benchmarkCurrentTrace bit-for-bit.
 *
 * @param setup the experiment environment
 * @param workloads one profile+seed per core (size = core count)
 * @param instructions dynamic instruction count per core
 * @param trim_warmup cycles dropped from the front (cold caches)
 * @param chip chip parameters (cores is overwritten from @p workloads;
 *        core config is overwritten from @p setup)
 * @param sampling optional SimPoint-style sampling applied to every
 *        core in lockstep; disabled by default (full detail,
 *        byte-identical to the historical signature)
 */
TraceSet chipCurrentTrace(const ExperimentSetup &setup,
                          const std::vector<ChipWorkload> &workloads,
                          std::uint64_t instructions,
                          std::size_t trim_warmup = 4096,
                          ChipConfig chip = {},
                          const SamplingConfig &sampling = {});

} // namespace didt

#endif // DIDT_CORE_EXPERIMENT_HH
