/**
 * @file
 * Full-trace voltage-emergency profiling (paper Section 4.2, Figure 9).
 *
 * Slides the wavelet variance model across a benchmark's current trace
 * in consecutive windows, estimates the probability of cycles below
 * (and above) the control points from the per-window Gaussian model,
 * and compares against the measured fractions from the convolved
 * voltage trace.
 */

#ifndef DIDT_CORE_EMERGENCY_ESTIMATOR_HH
#define DIDT_CORE_EMERGENCY_ESTIMATOR_HH

#include <cstddef>

#include "core/variance_model.hh"
#include "power/supply_network.hh"
#include "util/types.hh"

namespace didt
{

/** Estimated vs measured emergency exposure for one trace. */
struct EmergencyProfile
{
    /** Model estimate of the fraction of cycles below the threshold. */
    double estimatedBelow = 0.0;

    /** Measured fraction of cycles below the threshold. */
    double measuredBelow = 0.0;

    /** Model estimate of the fraction of cycles above the high level. */
    double estimatedAbove = 0.0;

    /** Measured fraction above the high level. */
    double measuredAbove = 0.0;

    /** Mean of per-window estimated voltage variance. */
    double estimatedVariance = 0.0;

    /** Variance of the measured voltage trace. */
    double measuredVariance = 0.0;

    /** Number of analysis windows. */
    std::size_t windows = 0;
};

/**
 * Profile a current trace against low/high control thresholds.
 *
 * @param trace per-cycle current
 * @param network the supply network (used for the measured reference)
 * @param model a calibrated variance model bound to the same network
 * @param low_threshold voltage of interest below nominal (paper: 0.97)
 * @param high_threshold voltage of interest above nominal
 * @param use_levels detail levels the estimator may use (empty = all)
 * @param use_correlation include the correlation adjustment
 */
EmergencyProfile profileTrace(const CurrentTrace &trace,
                              const SupplyNetwork &network,
                              const VoltageVarianceModel &model,
                              Volt low_threshold, Volt high_threshold,
                              std::span<const std::size_t> use_levels = {},
                              bool use_correlation = true);

/**
 * Workspace overload: all per-window and full-trace intermediates
 * (decomposition, estimate, voltage trace) live in @p ws, so profiling
 * many traces with one workspace per thread runs allocation-free after
 * warm-up. Bit-identical results to the allocating overload (which is
 * a thin adapter over this one).
 */
EmergencyProfile profileTrace(const CurrentTrace &trace,
                              const SupplyNetwork &network,
                              const VoltageVarianceModel &model,
                              Volt low_threshold, Volt high_threshold,
                              AnalysisWorkspace &ws,
                              std::span<const std::size_t> use_levels = {},
                              bool use_correlation = true);

} // namespace didt

#endif // DIDT_CORE_EMERGENCY_ESTIMATOR_HH
