#include "core/variance_model.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "obs/scoped_timer.hh"
#include "stats/running_stats.hh"
#include "util/logging.hh"
#include "wavelet/subband.hh"
#include "wavelet/wavelet_stats.hh"

namespace didt
{

namespace
{

/**
 * Solve the dense system A x = b by Gaussian elimination with partial
 * pivoting and a small ridge term for stability. Destroys @p a and
 * @p b (callers pass regression accumulators they no longer need, so
 * nothing is copied).
 */
std::vector<double>
solveDense(std::vector<std::vector<double>> &a, std::vector<double> &b)
{
    const std::size_t n = a.size();
    for (std::size_t i = 0; i < n; ++i)
        a[i][i] += 1e-9 * (1.0 + a[i][i]);
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row)
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        if (std::fabs(a[col][col]) < 1e-18)
            didt_panic("singular system in ensemble regression");
        for (std::size_t row = col + 1; row < n; ++row) {
            const double f = a[row][col] / a[col][col];
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            acc -= a[row][k] * x[k];
        x[row] = acc / a[row][row];
    }
    return x;
}

} // namespace

double
WindowEstimate::probBelow(Volt level) const
{
    const Gaussian model(mean, std::sqrt(std::max(0.0, variance)));
    return model.cdf(level);
}

double
WindowEstimate::probAbove(Volt level) const
{
    const Gaussian model(mean, std::sqrt(std::max(0.0, variance)));
    return model.tail(level);
}

double
VoltageVarianceModel::Factor::at(double rho1, double rho2) const
{
    return std::max(0.0, c0 + c1 * rho1 + c2 * rho2);
}

VoltageVarianceModel::VoltageVarianceModel(const SupplyNetwork &network,
                                           std::size_t window_length,
                                           std::size_t levels,
                                           WaveletBasis basis)
    : network_(network),
      window_(window_length),
      levels_(levels),
      dwt_(std::move(basis))
{
    if (levels_ == 0)
        didt_fatal("VoltageVarianceModel needs at least one level");
    if (window_ % (std::size_t(1) << levels_) != 0)
        didt_fatal("window length ", window_, " not divisible by 2^",
                   levels_);
    detailFactors_.assign(levels_, Factor{});
}

double
VoltageVarianceModel::measureOutputVariance(
    std::span<const double> window_signal, AnalysisWorkspace &ws) const
{
    // Tile the window so the convolution reaches its periodic steady
    // state, then measure output variance over the settled portion.
    constexpr std::size_t kTiles = 6;
    constexpr std::size_t kSettleTiles = 2;
    ws.tiled.clear();
    ws.tiled.reserve(window_signal.size() * kTiles);
    for (std::size_t t = 0; t < kTiles; ++t)
        ws.tiled.insert(ws.tiled.end(), window_signal.begin(),
                        window_signal.end());

    network_.computeVoltageInto(ws.tiled, ws.voltage);
    RunningStats out_stats;
    for (std::size_t n = kSettleTiles * window_signal.size();
         n < ws.voltage.size(); ++n)
        out_stats.push(ws.voltage[n]);
    return out_stats.variance();
}

void
VoltageVarianceModel::calibrate(Rng &rng, std::size_t samples_per_point)
{
    // "We performed a series of experiments that allowed us to isolate
    // the effects that wavelet variance and correlation had on each
    // detail scale level" (paper Section 4.1): drive the network with
    // an ensemble of processor-like stimuli — white issue noise, pulse
    // trains of varying period/duty (the stall/burst patterns real
    // pipelines produce), steps, and slow phase drifts — and fit the
    // per-level multiplicative factors kappa_j(rho) = a_j + b_j rho by
    // least squares against the measured voltage variance.
    const std::size_t samples = std::max<std::size_t>(200,
                                                      samples_per_point * 50);
    Regression reg;
    beginRegression(reg);
    AnalysisWorkspace ws;
    std::vector<double> signal;

    const double resonant_period =
        network_.config().clockHz / network_.resonantFrequency();

    for (std::size_t s = 0; s < samples; ++s) {
        // --- synthesize one stimulus window ------------------------------
        signal.assign(window_, 40.0);

        if (rng.bernoulli(0.25)) {
            // Clean resonance-locked square wave: the coherent case a
            // dI/dt stressor produces, which noisy mixtures cannot pin.
            const double period =
                resonant_period * rng.uniform(0.85, 1.15);
            const double amp = rng.uniform(10.0, 40.0);
            const double phase = rng.uniform(0.0, period);
            for (std::size_t n = 0; n < window_; ++n) {
                const double pos =
                    std::fmod(static_cast<double>(n) + phase, period);
                signal[n] += pos < period / 2.0 ? amp : 0.0;
            }
            accumulateWindow(reg, signal, ws);
            continue;
        }

        const double noise_sd = rng.uniform(0.5, 12.0);
        for (auto &x : signal)
            x += rng.normal(0.0, noise_sd);

        const int trains = static_cast<int>(rng.uniformInt(3)); // 0,1,2
        for (int p = 0; p < trains; ++p) {
            const double period = rng.uniform(8.0, 96.0);
            const double duty = rng.uniform(0.1, 0.6);
            const double amp = rng.uniform(5.0, 45.0);
            const double phase = rng.uniform(0.0, period);
            for (std::size_t n = 0; n < window_; ++n) {
                const double pos =
                    std::fmod(static_cast<double>(n) + phase, period);
                if (pos < duty * period)
                    signal[n] += amp;
            }
        }
        if (rng.bernoulli(0.3)) {
            const std::size_t at = rng.uniformInt(window_);
            const double height = rng.uniform(-20.0, 20.0);
            for (std::size_t n = at; n < window_; ++n)
                signal[n] += height;
        }
        if (rng.bernoulli(0.3)) {
            const double period = rng.uniform(100.0, 1000.0);
            const double amp = rng.uniform(5.0, 25.0);
            for (std::size_t n = 0; n < window_; ++n)
                signal[n] += amp * std::sin(2.0 * M_PI *
                                            static_cast<double>(n) / period);
        }
        for (auto &x : signal)
            x = std::max(0.0, x);

        accumulateWindow(reg, signal, ws);
    }

    finishRegression(reg);
}

void
VoltageVarianceModel::calibrateOnTraces(std::span<const CurrentTrace> traces)
{
    obs::ScopedTimer span("model.calibrate_on_traces", obs::Histogram{},
                          nullptr, "core");
    Regression reg;
    beginRegression(reg);
    AnalysisWorkspace ws;
    std::size_t windows = 0;
    for (const CurrentTrace &trace : traces) {
        const std::span<const double> samples(trace.data(), trace.size());
        for (std::size_t off = 0; off + window_ <= trace.size();
             off += window_) {
            accumulateWindow(reg, samples.subspan(off, window_), ws);
            ++windows;
        }
    }
    if (windows < 16)
        didt_fatal("calibrateOnTraces needs at least 16 windows, got ",
                   windows);
    finishRegression(reg);
}

void
VoltageVarianceModel::beginRegression(Regression &reg) const
{
    reg.hasApprox = (window_ >> levels_) >= 2;
    reg.cols = 3 * levels_ + (reg.hasApprox ? 2 : 0);
    reg.xtx.assign(reg.cols, std::vector<double>(reg.cols, 0.0));
    reg.xty.assign(reg.cols, 0.0);
    reg.colSum.assign(reg.cols, 0.0);
    reg.rows = 0;
}

void
VoltageVarianceModel::accumulateWindow(Regression &reg,
                                       std::span<const double> signal,
                                       AnalysisWorkspace &ws) const
{
    dwt_.forward(signal, levels_, ws.dec, ws.dwt);
    computeScaleStats(ws.dec, ws.stats);
    std::vector<double> &row = ws.row;
    row.assign(reg.cols, 0.0);
    for (std::size_t j = 0; j < levels_; ++j) {
        const double rho2 = lagAutocorrelation(ws.dec.detail(j), 2);
        row[3 * j] = ws.stats.subbandVariance[j];
        row[3 * j + 1] =
            ws.stats.adjacentCorrelation[j] * ws.stats.subbandVariance[j];
        row[3 * j + 2] = rho2 * ws.stats.subbandVariance[j];
    }
    if (reg.hasApprox) {
        const double rho_a = lag1Autocorrelation(ws.dec.approximation());
        row[3 * levels_] = ws.stats.approximationVariance;
        row[3 * levels_ + 1] = rho_a * ws.stats.approximationVariance;
    }
    const double y = measureOutputVariance(signal, ws);
    if (y <= 0.0)
        return;

    // Weight for relative error so quiet broadband windows count as
    // much as loud resonant ones.
    const double w = 1.0 / (y * y);
    for (std::size_t p = 0; p < reg.cols; ++p) {
        for (std::size_t q = 0; q < reg.cols; ++q)
            reg.xtx[p][q] += w * row[p] * row[q];
        reg.xty[p] += w * row[p] * y;
        reg.colSum[p] += row[p];
    }
    ++reg.rows;
}

void
VoltageVarianceModel::finishRegression(Regression &reg)
{
    const std::vector<double> coeff = solveDense(reg.xtx, reg.xty);
    meanContribution_.assign(levels_, 0.0);
    const auto rows = static_cast<double>(std::max<std::size_t>(1, reg.rows));
    for (std::size_t j = 0; j < levels_; ++j) {
        detailFactors_[j] = Factor{std::max(0.0, coeff[3 * j]),
                                   coeff[3 * j + 1], coeff[3 * j + 2]};
        meanContribution_[j] =
            std::max(0.0, (coeff[3 * j] * reg.colSum[3 * j] +
                           coeff[3 * j + 1] * reg.colSum[3 * j + 1] +
                           coeff[3 * j + 2] * reg.colSum[3 * j + 2]) /
                              rows);
    }
    if (reg.hasApprox)
        approxFactor_ = Factor{std::max(0.0, coeff[3 * levels_]),
                               coeff[3 * levels_ + 1], 0.0};
    else
        approxFactor_ = Factor{};

    calibrated_ = true;
}

void
VoltageVarianceModel::calibrateAnalytic()
{
    const Hertz clock = network_.config().clockHz;
    constexpr std::size_t kProbes = 64;
    for (std::size_t j = 0; j < levels_; ++j) {
        const SubbandFrequency band = detailBandFrequency(j, clock);
        double acc = 0.0;
        for (std::size_t p = 0; p < kProbes; ++p) {
            const double f =
                band.lowHz + (band.highHz - band.lowHz) *
                                 (static_cast<double>(p) + 0.5) /
                                 static_cast<double>(kProbes);
            const double z = network_.impedanceAt(f);
            acc += z * z;
        }
        detailFactors_[j] = Factor{acc / static_cast<double>(kProbes), 0.0,
                                   0.0};
    }
    // Approximation band: DC up to the coarsest detail band's lower edge.
    const double f_hi = clock / static_cast<double>(
                                    std::size_t(1) << (levels_ + 1));
    double acc = 0.0;
    for (std::size_t p = 0; p < kProbes; ++p) {
        const double f = f_hi * (static_cast<double>(p) + 0.5) /
                         static_cast<double>(kProbes);
        const double z = network_.impedanceAt(f);
        acc += z * z;
    }
    approxFactor_ = Factor{acc / static_cast<double>(kProbes), 0.0, 0.0};
    meanContribution_.clear(); // no training set: rank by base factor
    calibrated_ = true;
}

WindowEstimate
VoltageVarianceModel::estimate(std::span<const double> window,
                               std::span<const std::size_t> use_levels,
                               bool use_correlation) const
{
    WindowEstimate est;
    AnalysisWorkspace ws;
    estimate(window, use_levels, use_correlation, est, ws);
    return est;
}

void
VoltageVarianceModel::estimate(std::span<const double> window,
                               std::span<const std::size_t> use_levels,
                               bool use_correlation, WindowEstimate &out,
                               AnalysisWorkspace &ws) const
{
    if (!calibrated_)
        didt_panic("VoltageVarianceModel::estimate before calibration");
    if (window.size() != window_)
        didt_panic("estimate() expects ", window_, " samples, got ",
                   window.size());

    dwt_.forward(window, levels_, ws.dec, ws.dwt);
    computeScaleStats(ws.dec, ws.stats);

    ws.selected.assign(levels_, use_levels.empty() ? 1 : 0);
    for (std::size_t j : use_levels) {
        if (j >= levels_)
            didt_panic("estimate(): level ", j, " out of range");
        ws.selected[j] = 1;
    }

    out.contributions.assign(levels_ + 1, 0.0);

    RunningStats mean_stats;
    for (double x : window)
        mean_stats.push(x);
    out.mean = network_.steadyStateVoltage(mean_stats.mean());

    double total = 0.0;
    for (std::size_t j = 0; j < levels_; ++j) {
        if (!ws.selected[j])
            continue;
        const double rho1 =
            use_correlation ? ws.stats.adjacentCorrelation[j] : 0.0;
        const double rho2 =
            use_correlation ? lagAutocorrelation(ws.dec.detail(j), 2) : 0.0;
        const double contribution =
            detailFactors_[j].at(rho1, rho2) * ws.stats.subbandVariance[j];
        out.contributions[j] = contribution;
        total += contribution;
    }
    if (ws.dec.approximation().size() >= 2) {
        const double rho =
            use_correlation ? lag1Autocorrelation(ws.dec.approximation())
                            : 0.0;
        const double contribution =
            approxFactor_.at(rho, 0.0) * ws.stats.approximationVariance;
        out.contributions[levels_] = contribution;
        total += contribution;
    }
    out.variance = total;
}

std::vector<std::size_t>
VoltageVarianceModel::topLevels(std::size_t k) const
{
    // Rank by mean training-set contribution when available (trace or
    // ensemble calibration); otherwise fall back to the base factor.
    std::vector<std::size_t> order(levels_);
    std::iota(order.begin(), order.end(), 0);
    const bool have_contrib = !meanContribution_.empty();
    std::stable_sort(order.begin(), order.end(),
                     [this, have_contrib](std::size_t a, std::size_t b) {
                         if (have_contrib)
                             return meanContribution_[a] >
                                    meanContribution_[b];
                         return detailFactors_[a].c0 > detailFactors_[b].c0;
                     });
    order.resize(std::min(k, order.size()));
    std::sort(order.begin(), order.end());
    return order;
}

double
VoltageVarianceModel::meanContribution(std::size_t j) const
{
    if (j >= levels_)
        didt_panic("meanContribution: level ", j, " out of range");
    return j < meanContribution_.size() ? meanContribution_[j] : 0.0;
}

double
VoltageVarianceModel::baseFactor(std::size_t j) const
{
    if (j >= levels_)
        didt_panic("baseFactor: level ", j, " out of range");
    return detailFactors_[j].c0;
}

} // namespace didt
