/**
 * @file
 * Differential-verification oracles for the paper's two headline
 * equivalences, plus the closed-loop dispatch equivalence.
 *
 * The paper's claims rest on approximations tracking exact references:
 *
 *  1. The online top-K wavelet monitor (Section 5) must track the full
 *     time-domain convolution of current history with the network's
 *     impulse response. checkMonitor() runs both over a trace and
 *     bounds the divergence by the monitor's own analytic worst case —
 *     the L1 norm of the dropped kernel part times the observed
 *     current half-swing (paper Figure 13) — so a regression in the
 *     coefficient ranking, the shift-register sums, or the DC tail
 *     term is caught as a bound violation, not a golden-file diff.
 *
 *  2. The offline Gaussian variance model (Section 4) must track
 *     measured cosimulated voltage statistics. checkVarianceModel()
 *     profiles traces through the calibrated model and compares
 *     estimated vs measured voltage variance and emergency fractions
 *     against paper-calibrated tolerances.
 *
 *  3. Every control scheme's devirtualized cosim loop must equal the
 *     per-cycle virtual reference bit for bit. checkScheme() runs both
 *     and compares every result field exactly.
 *
 * Oracles only measure and judge; they never assert or abort. Tests
 * decide what a failed report means.
 */

#ifndef DIDT_VERIFY_ORACLE_HH
#define DIDT_VERIFY_ORACLE_HH

#include <cstdint>
#include <span>
#include <string>

#include "core/cosim.hh"
#include "core/experiment.hh"
#include "core/variance_model.hh"
#include "power/supply_network.hh"
#include "util/types.hh"

namespace didt
{
namespace verify
{

/** Pointwise divergence between two equal-length series. */
struct Divergence
{
    double maxAbs = 0.0;      ///< max |a - b|
    double rms = 0.0;         ///< sqrt(mean (a - b)^2)
    std::size_t samples = 0;  ///< points compared
};

/** Measure the divergence of @p a from @p b (sizes must match). */
Divergence measureDivergence(std::span<const double> a,
                             std::span<const double> b);

/** Tolerances the oracles judge against. Defaults are calibrated to
 *  the paper's reported accuracy with headroom for platform noise;
 *  tests may tighten them for specific configurations. */
struct OracleTolerances
{
    /** Allowed multiple of the wavelet monitor's analytic error bound
     *  (1.0 = the bound itself; slack absorbs warm-start transients). */
    double monitorBoundSlack = 1.05;

    /** Absolute monitor-divergence floor in volts, for traces whose
     *  swing (and therefore bound) is tiny. */
    Volt monitorFloor = 1e-9;

    /** Allowed relative error of estimated vs measured voltage
     *  variance per trace (Section 4: worst benchmarks land near 30%;
     *  Figure 12 means are far tighter). */
    double varianceRelTol = 0.5;

    /** Allowed |estimated - measured| emergency fraction, in
     *  percentage points (Figure 9 tracks within a few points). */
    double emergencyPctTol = 5.0;

    /** Allowed relative error of the sampled trace's resonant-octave
     *  wavelet variance vs the full-detail trace's (the quantity the
     *  dI/dt analyses key on; reconstruction preserves the band but
     *  not the exact phase alignment). */
    double samplingVarianceRelTol = 0.5;

    /** Allowed |sampled - full| threshold-crossing fraction for a
     *  sampled trace, in percentage points per threshold. */
    double samplingCrossingPctTol = 3.0;
};

/** Result of one monitor-vs-reference differential run. */
struct MonitorOracleReport
{
    Divergence divergence;    ///< wavelet estimate vs exact reference
    Volt bound = 0.0;         ///< analytic worst case for this trace
    Amp halfSwing = 0.0;      ///< observed current half-swing
    std::size_t terms = 0;    ///< retained wavelet terms
    bool pass = false;        ///< maxAbs <= bound * slack + floor
};

/** Result of one variance-model-vs-measurement differential run. */
struct VarianceOracleReport
{
    double maxVarianceRelError = 0.0; ///< worst per-trace |est/meas - 1|
    double rmsVarianceRelError = 0.0;
    double maxEmergencyPctError = 0.0; ///< worst |est - meas| pct points
    double rmsEmergencyPctError = 0.0;
    std::size_t traces = 0;
    bool pass = false;
};

/** Result of one sampled-vs-full-detail differential run. */
struct SamplingOracleReport
{
    double fullResonanceVariance = 0.0;    ///< full-detail octave variance
    double sampledResonanceVariance = 0.0; ///< sampled-trace octave variance
    double resonanceVarianceRelError = 0.0; ///< |sampled/full - 1|
    double lowCrossingPctError = 0.0;  ///< |sampled - full| % below low
    double highCrossingPctError = 0.0; ///< |sampled - full| % above high
    std::size_t fullCycles = 0;        ///< full-detail trace length
    std::size_t sampledCycles = 0;     ///< sampled trace length
    bool pass = false;
};

/** Result of one scheme dispatch-equivalence run. */
struct SchemeOracleReport
{
    std::string scheme;                        ///< scheme name
    bool devirtualizedMatchesReference = false; ///< exact field equality
    bool committedAll = false;                  ///< finished the stream
    bool pass = false;
};

/** Result of one supply-variation differential run. */
struct VariationOracleReport
{
    /** A zero-sigma draw reproduces the base config bit for bit. */
    bool zeroSigmaConfigBitIdentical = false;

    /** The zero-sigma drawn network's voltage trace equals the
     *  nominal network's exactly (MC off stays the seed path). */
    bool zeroSigmaVoltageBitIdentical = false;

    /** The same (seed, draw) always yields the same config bits. */
    bool drawDeterministic = false;

    /** A nonzero sigma actually perturbs the drawn network. */
    bool nonzeroSigmaPerturbs = false;

    bool pass = false; ///< all of the above
};

/** Differential oracle bound to one experiment environment. */
class Oracle
{
  public:
    /**
     * @param setup experiment environment (kept by reference; must
     *        outlive the oracle)
     * @param tolerances pass/fail thresholds
     */
    explicit Oracle(const ExperimentSetup &setup,
                    OracleTolerances tolerances = {});

    /**
     * Run the top-K wavelet monitor and the exact (untruncated)
     * streaming convolution over @p trace and report their divergence
     * against the analytic bound.
     */
    MonitorOracleReport checkMonitor(const SupplyNetwork &network,
                                     const CurrentTrace &trace,
                                     std::size_t terms = 13,
                                     std::size_t window = 256,
                                     std::size_t levels = 8) const;

    /**
     * Profile each trace through @p model (which must be calibrated
     * against @p network) and compare estimated vs measured voltage
     * variance and emergency fractions.
     */
    VarianceOracleReport
    checkVarianceModel(const SupplyNetwork &network,
                       const VoltageVarianceModel &model,
                       std::span<const CurrentTrace> traces,
                       Volt low_threshold = 0.97,
                       Volt high_threshold = 1.03) const;

    /**
     * Run @p scheme closed-loop twice — devirtualized and per-cycle
     * virtual reference — and require exact result equality plus
     * stream completion. @p hazard_model is required for the
     * AdaptiveWavelet scheme (ignored otherwise).
     */
    SchemeOracleReport
    checkScheme(ControlScheme scheme, const BenchmarkProfile &profile,
                const SupplyNetwork &network,
                std::uint64_t instructions = 20000,
                const VoltageVarianceModel *hazard_model = nullptr) const;

    /**
     * Run @p profile full-detail and under @p sampling, then compare
     * the two traces on the statistics the dI/dt analyses consume:
     * the wavelet variance of the resonant octave (MODWT, haar) and
     * the fraction of cycles whose supply voltage crosses the
     * low/high control points on the @p impedance_scale network.
     * Sampling trades per-cycle fidelity for throughput; this oracle
     * bounds what the trade costs.
     */
    SamplingOracleReport
    checkSampling(const BenchmarkProfile &profile,
                  const SamplingConfig &sampling,
                  std::uint64_t instructions = 60000,
                  double impedance_scale = 1.0,
                  std::size_t levels = 8, Volt low_threshold = 0.97,
                  Volt high_threshold = 1.03) const;

    /**
     * Differential check of the Monte Carlo variation layer
     * (power/variation.hh): a zero-sigma draw must leave the supply
     * config — and the voltage trace it computes for @p profile —
     * bit-identical to the nominal network (MC off is the seed path);
     * draws must be deterministic in (seed, index); and a draw at
     * @p sigma must actually move the network.
     */
    VariationOracleReport
    checkVariation(const BenchmarkProfile &profile,
                   double impedance_scale = 1.2,
                   std::uint64_t instructions = 20000,
                   double sigma = 0.05,
                   std::uint64_t mc_seed = 42) const;

    const OracleTolerances &tolerances() const { return tol_; }

  private:
    const ExperimentSetup &setup_;
    OracleTolerances tol_;
};

} // namespace verify
} // namespace didt

#endif // DIDT_VERIFY_ORACLE_HH
