#include "verify/failpoint.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace didt
{
namespace verify
{

namespace
{

struct Site
{
    TriggerPolicy policy;
    FailPointStats stats;
};

/**
 * Registry state. A plain mutex is enough: the macro's atomic gate
 * keeps unarmed runs off this path entirely, and armed runs evaluate
 * sites at failure-path granularity (per disk read, per cell), not in
 * per-sample loops.
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, Site, std::less<>> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** FNV-1a over the probability seed, site, and key: the fire decision
 *  for a keyed probability policy is a pure function of these, so it
 *  cannot depend on hit order or thread interleaving. */
double
keyedUniform(std::uint64_t seed, std::string_view site,
             std::string_view key, std::uint64_t salt)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](const void *data, std::size_t len) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    };
    mix(&seed, sizeof(seed));
    mix(site.data(), site.size());
    mix(key.data(), key.size());
    mix(&salt, sizeof(salt));
    // Top 53 bits -> [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

TriggerPolicy
TriggerPolicy::always()
{
    return TriggerPolicy{};
}

TriggerPolicy
TriggerPolicy::nthHit(std::uint64_t n)
{
    TriggerPolicy p;
    p.kind = Kind::NthHit;
    p.n = n > 0 ? n : 1;
    return p;
}

TriggerPolicy
TriggerPolicy::everyK(std::uint64_t k)
{
    TriggerPolicy p;
    p.kind = Kind::EveryK;
    p.n = k > 0 ? k : 1;
    return p;
}

TriggerPolicy
TriggerPolicy::probability(double prob, std::uint64_t seed)
{
    TriggerPolicy p;
    p.kind = Kind::Probability;
    p.p = prob < 0.0 ? 0.0 : (prob > 1.0 ? 1.0 : prob);
    p.seed = seed;
    return p;
}

TriggerPolicy
TriggerPolicy::keyEquals(std::string key)
{
    TriggerPolicy p;
    p.kind = Kind::KeyEquals;
    p.key = std::move(key);
    return p;
}

namespace
{
/** Fire observer; both written under the registry lock, read with
 *  acquire so the firing thread sees a consistent (fn, state) pair. */
std::atomic<FailPointObserver> g_observer{nullptr};
std::atomic<void *> g_observerState{nullptr};
} // namespace

void
setFailPointObserver(FailPointObserver observer, void *state)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    g_observerState.store(state, std::memory_order_relaxed);
    g_observer.store(observer, std::memory_order_release);
}

namespace detail
{

std::atomic<bool> g_armed{false};

bool
evaluate(std::string_view site, std::string_view key)
{
    bool fire = false;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        const auto it = r.sites.find(site);
        if (it == r.sites.end())
            return false;
        Site &s = it->second;
        ++s.stats.hits;
        switch (s.policy.kind) {
          case TriggerPolicy::Kind::Always:
            fire = true;
            break;
          case TriggerPolicy::Kind::NthHit:
            fire = s.stats.hits == s.policy.n;
            break;
          case TriggerPolicy::Kind::EveryK:
            fire = s.stats.hits % s.policy.n == 0;
            break;
          case TriggerPolicy::Kind::Probability:
            // Empty keys fall back to the hit index, which is only
            // deterministic single-threaded; keyed callers get full
            // schedule independence.
            fire = keyedUniform(s.policy.seed, site, key,
                                key.empty() ? s.stats.hits : 0) <
                   s.policy.p;
            break;
          case TriggerPolicy::Kind::KeyEquals:
            fire = key == s.policy.key;
            break;
        }
        if (fire)
            ++s.stats.fires;
    }
    if (fire) {
        if (const FailPointObserver observer =
                g_observer.load(std::memory_order_acquire))
            observer(g_observerState.load(std::memory_order_relaxed),
                     site, key);
    }
    return fire;
}

} // namespace detail

void
armFailPoint(const std::string &site, TriggerPolicy policy)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites[site] = Site{std::move(policy), FailPointStats{}};
    detail::g_armed.store(true, std::memory_order_relaxed);
}

void
disarmFailPoint(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites.erase(site);
    detail::g_armed.store(!r.sites.empty(), std::memory_order_relaxed);
}

void
resetFailPoints()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites.clear();
    detail::g_armed.store(false, std::memory_order_relaxed);
}

FailPointStats
failPointStats(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    return it == r.sites.end() ? FailPointStats{} : it->second.stats;
}

std::vector<std::string>
armedFailPoints()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.sites.size());
    for (const auto &entry : r.sites)
        names.push_back(entry.first);
    return names; // std::map iterates sorted
}

namespace
{

bool
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

/** Parse "<n>" as a positive integer; false on anything else. */
bool
parseUint(const std::string &text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = value;
    return true;
}

bool
parsePolicy(const std::string &text, TriggerPolicy *out,
            std::string *error)
{
    const std::size_t colon = text.find(':');
    const std::string head = text.substr(0, colon);
    const std::string rest =
        colon == std::string::npos ? "" : text.substr(colon + 1);
    if (head == "always") {
        *out = TriggerPolicy::always();
        return true;
    }
    if (head == "nth" || head == "every") {
        std::uint64_t n = 0;
        if (!parseUint(rest, &n) || n == 0)
            return setError(error, "bad count in '" + text + "'");
        *out = head == "nth" ? TriggerPolicy::nthHit(n)
                             : TriggerPolicy::everyK(n);
        return true;
    }
    if (head == "prob") {
        const std::size_t colon2 = rest.find(':');
        const std::string p_text = rest.substr(0, colon2);
        std::size_t consumed = 0;
        double p = 0.0;
        try {
            p = std::stod(p_text, &consumed);
        } catch (const std::exception &) {
            consumed = 0;
        }
        if (p_text.empty() || consumed != p_text.size() || p < 0.0 ||
            p > 1.0)
            return setError(error,
                            "bad probability in '" + text + "'");
        std::uint64_t seed = 0;
        if (colon2 != std::string::npos &&
            !parseUint(rest.substr(colon2 + 1), &seed))
            return setError(error, "bad seed in '" + text + "'");
        *out = TriggerPolicy::probability(p, seed);
        return true;
    }
    if (head == "key") {
        if (rest.empty())
            return setError(error, "empty key in '" + text + "'");
        *out = TriggerPolicy::keyEquals(rest);
        return true;
    }
    return setError(error, "unknown policy '" + text + "'");
}

} // namespace

bool
armFailPointsFromSpec(const std::string &spec, std::string *error)
{
    // Parse the whole spec before arming anything, so a malformed
    // trailing entry cannot leave a half-armed configuration behind.
    std::vector<std::pair<std::string, TriggerPolicy>> parsed;
    std::vector<std::string> disarm;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t semi = spec.find(';', pos);
        const std::string entry =
            spec.substr(pos, semi == std::string::npos ? std::string::npos
                                                       : semi - pos);
        pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
        if (entry.empty())
            continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0)
            return setError(error, "expected site=policy in '" + entry +
                                       "'");
        const std::string site = entry.substr(0, eq);
        const std::string policy_text = entry.substr(eq + 1);
        if (policy_text == "off") {
            disarm.push_back(site);
            continue;
        }
        TriggerPolicy policy;
        if (!parsePolicy(policy_text, &policy, error))
            return false;
        parsed.emplace_back(site, std::move(policy));
    }
    if (parsed.empty() && disarm.empty())
        return setError(error, "empty failpoint spec");
    for (const std::string &site : disarm)
        disarmFailPoint(site);
    for (auto &entry : parsed)
        armFailPoint(entry.first, std::move(entry.second));
    return true;
}

void
armFailPointsFromEnv()
{
    const char *spec = std::getenv("DIDT_FAILPOINTS");
    if (!spec || !*spec)
        return;
    const std::string text(spec);
    if (text == "OFF" || text == "off" || text == "0")
        return;
    std::string error;
    if (!armFailPointsFromSpec(text, &error)) {
        // A typo in a fault-injection run must not silently become a
        // clean run; no logging dependency here, so plain stderr.
        std::fprintf(stderr, "fatal: DIDT_FAILPOINTS: %s\n",
                     error.c_str());
        std::exit(2);
    }
}

} // namespace verify
} // namespace didt
