#include "verify/oracle.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/emergency_estimator.hh"
#include "core/monitor.hh"
#include "power/variation.hh"
#include "wavelet/modwt.hh"

namespace didt
{
namespace verify
{

Divergence
measureDivergence(std::span<const double> a, std::span<const double> b)
{
    Divergence d;
    const std::size_t n = std::min(a.size(), b.size());
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double err = std::fabs(a[i] - b[i]);
        d.maxAbs = std::max(d.maxAbs, err);
        sq += err * err;
    }
    d.samples = n;
    d.rms = n ? std::sqrt(sq / static_cast<double>(n)) : 0.0;
    return d;
}

Oracle::Oracle(const ExperimentSetup &setup, OracleTolerances tolerances)
    : setup_(setup), tol_(tolerances)
{
}

MonitorOracleReport
Oracle::checkMonitor(const SupplyNetwork &network,
                     const CurrentTrace &trace, std::size_t terms,
                     std::size_t window, std::size_t levels) const
{
    MonitorOracleReport report;

    WaveletMonitor monitor(network, terms, window, levels);
    // The exact online reference: the same impulse response with every
    // tap retained (energy fraction 1.0 disables truncation). Both
    // monitors share the steady-state warm start (history assumed
    // equal to the first sample), so the only difference between the
    // two series is the wavelet-domain top-K truncation the analytic
    // bound covers.
    FullConvolutionMonitor reference(network, 1.0);

    VoltageTrace wavelet_v(trace.size());
    VoltageTrace reference_v(trace.size());
    // True voltage is unused by both estimation monitors.
    const VoltageTrace unused(trace.size(),
                              network.config().nominalVoltage);
    monitor.updateBlock(trace, unused, wavelet_v);
    reference.updateBlock(trace, unused, reference_v);

    report.divergence = measureDivergence(wavelet_v, reference_v);
    report.terms = monitor.termCount();

    const auto [lo, hi] = std::minmax_element(trace.begin(), trace.end());
    report.halfSwing =
        trace.empty() ? 0.0 : 0.5 * (*hi - *lo);
    report.bound = monitor.maxError(report.halfSwing);
    report.pass = report.divergence.maxAbs <=
                  report.bound * tol_.monitorBoundSlack +
                      tol_.monitorFloor;
    return report;
}

VarianceOracleReport
Oracle::checkVarianceModel(const SupplyNetwork &network,
                           const VoltageVarianceModel &model,
                           std::span<const CurrentTrace> traces,
                           Volt low_threshold, Volt high_threshold) const
{
    VarianceOracleReport report;
    double var_sq = 0.0;
    double pct_sq = 0.0;
    std::size_t pct_samples = 0;
    for (const CurrentTrace &trace : traces) {
        const EmergencyProfile ep =
            profileTrace(trace, network, model, low_threshold,
                         high_threshold);
        if (ep.measuredVariance > 0.0) {
            const double rel = std::fabs(ep.estimatedVariance -
                                         ep.measuredVariance) /
                               ep.measuredVariance;
            report.maxVarianceRelError =
                std::max(report.maxVarianceRelError, rel);
            var_sq += rel * rel;
        }
        for (const double err :
             {100.0 * (ep.estimatedBelow - ep.measuredBelow),
              100.0 * (ep.estimatedAbove - ep.measuredAbove)}) {
            report.maxEmergencyPctError =
                std::max(report.maxEmergencyPctError, std::fabs(err));
            pct_sq += err * err;
            ++pct_samples;
        }
        ++report.traces;
    }
    report.rmsVarianceRelError =
        report.traces
            ? std::sqrt(var_sq / static_cast<double>(report.traces))
            : 0.0;
    report.rmsEmergencyPctError =
        pct_samples
            ? std::sqrt(pct_sq / static_cast<double>(pct_samples))
            : 0.0;
    report.pass = report.traces > 0 &&
                  report.maxVarianceRelError <= tol_.varianceRelTol &&
                  report.maxEmergencyPctError <= tol_.emergencyPctTol;
    return report;
}

SamplingOracleReport
Oracle::checkSampling(const BenchmarkProfile &profile,
                      const SamplingConfig &sampling,
                      std::uint64_t instructions, double impedance_scale,
                      std::size_t levels, Volt low_threshold,
                      Volt high_threshold) const
{
    SamplingOracleReport report;

    const CurrentTrace full =
        benchmarkCurrentTrace(setup_, profile, instructions);
    const CurrentTrace sampled = benchmarkCurrentTrace(
        setup_, profile, instructions, 0, 4096, sampling);
    report.fullCycles = full.size();
    report.sampledCycles = sampled.size();
    if (full.size() < 64 || sampled.size() < 64)
        return report;

    const SupplyNetwork network = setup_.makeNetwork(impedance_scale);

    // Resonant-octave wavelet variance, the chip_cosim.cc recipe:
    // level j spans [clock/2^(j+1), clock/2^j].
    const Modwt modwt(WaveletBasis::haar());
    const std::vector<double> full_var =
        modwt.waveletVariance(full, levels);
    const std::vector<double> sampled_var =
        modwt.waveletVariance(sampled, levels);
    const double ratio =
        network.config().clockHz / network.config().resonantHz;
    const auto octave = static_cast<std::size_t>(
        std::floor(std::log2(std::max(2.0, ratio))));
    const std::size_t level = std::min(octave - 1, full_var.size() - 1);
    report.fullResonanceVariance = full_var[level];
    report.sampledResonanceVariance = sampled_var[level];
    if (report.fullResonanceVariance > 0.0)
        report.resonanceVarianceRelError =
            std::fabs(report.sampledResonanceVariance -
                      report.fullResonanceVariance) /
            report.fullResonanceVariance;

    // Control-point crossing fractions of the resulting voltage.
    auto crossingPct = [&](const CurrentTrace &trace, double &below,
                           double &above) {
        const VoltageTrace v = network.computeVoltage(trace);
        std::size_t n_below = 0;
        std::size_t n_above = 0;
        for (const Volt volt : v) {
            if (volt < low_threshold)
                ++n_below;
            if (volt > high_threshold)
                ++n_above;
        }
        below = 100.0 * static_cast<double>(n_below) /
                static_cast<double>(v.size());
        above = 100.0 * static_cast<double>(n_above) /
                static_cast<double>(v.size());
    };
    double full_below = 0.0, full_above = 0.0;
    double sampled_below = 0.0, sampled_above = 0.0;
    crossingPct(full, full_below, full_above);
    crossingPct(sampled, sampled_below, sampled_above);
    report.lowCrossingPctError = std::fabs(sampled_below - full_below);
    report.highCrossingPctError = std::fabs(sampled_above - full_above);

    report.pass =
        report.resonanceVarianceRelError <= tol_.samplingVarianceRelTol &&
        report.lowCrossingPctError <= tol_.samplingCrossingPctTol &&
        report.highCrossingPctError <= tol_.samplingCrossingPctTol;
    return report;
}

SchemeOracleReport
Oracle::checkScheme(ControlScheme scheme, const BenchmarkProfile &profile,
                    const SupplyNetwork &network,
                    std::uint64_t instructions,
                    const VoltageVarianceModel *hazard_model) const
{
    SchemeOracleReport report;
    report.scheme = controlSchemeName(scheme);

    CosimConfig cfg;
    cfg.instructions = instructions;
    cfg.scheme = scheme;
    cfg.hazardModel = hazard_model;
    cfg.maxCycles = instructions * 64;

    cfg.devirtualize = true;
    const CosimResult fast =
        runClosedLoop(profile, setup_.proc, setup_.power, network, cfg);
    cfg.devirtualize = false;
    const CosimResult reference =
        runClosedLoop(profile, setup_.proc, setup_.power, network, cfg);

    report.devirtualizedMatchesReference =
        fast.cycles == reference.cycles &&
        fast.committed == reference.committed &&
        fast.lowFaults == reference.lowFaults &&
        fast.highFaults == reference.highFaults &&
        fast.controlCycles == reference.controlCycles &&
        fast.stallCycles == reference.stallCycles &&
        fast.noopCycles == reference.noopCycles &&
        fast.falsePositives == reference.falsePositives &&
        fast.minVoltage == reference.minVoltage &&
        fast.maxVoltage == reference.maxVoltage &&
        fast.meanCurrent == reference.meanCurrent &&
        fast.energyJ == reference.energyJ;
    report.committedAll = fast.committed == instructions &&
                          reference.committed == instructions;
    report.pass =
        report.devirtualizedMatchesReference && report.committedAll;
    return report;
}

VariationOracleReport
Oracle::checkVariation(const BenchmarkProfile &profile,
                       double impedance_scale,
                       std::uint64_t instructions, double sigma,
                       std::uint64_t mc_seed) const
{
    VariationOracleReport report;

    SupplyNetworkConfig base = setup_.supplyBase;
    base.impedanceScale = impedance_scale;

    const auto configBitsEqual = [](const SupplyNetworkConfig &a,
                                    const SupplyNetworkConfig &b) {
        return std::memcmp(&a, &b, sizeof(SupplyNetworkConfig)) == 0;
    };

    // Zero sigma: the draw must not touch a single field, and the
    // network built from it must compute bit-identical voltages —
    // exactly the guarantee the MC-off campaign path relies on.
    const std::uint64_t seed0 = deriveDrawSeed(mc_seed, 0);
    const SupplyNetworkConfig zero_draw =
        drawSupplyConfig(base, SupplyVariationSpec{}, seed0);
    report.zeroSigmaConfigBitIdentical = configBitsEqual(zero_draw, base);

    const CurrentTrace trace =
        benchmarkCurrentTrace(setup_, profile, instructions);
    const SupplyNetwork nominal(base);
    const SupplyNetwork redrawn(zero_draw);
    const VoltageTrace v_nominal = nominal.computeVoltage(trace);
    const VoltageTrace v_redrawn = redrawn.computeVoltage(trace);
    report.zeroSigmaVoltageBitIdentical =
        v_nominal.size() == v_redrawn.size() &&
        std::memcmp(v_nominal.data(), v_redrawn.data(),
                    v_nominal.size() * sizeof(Volt)) == 0;

    // Determinism: the same (seed, draw index) must always yield the
    // same config bits; a different draw index must not.
    const SupplyVariationSpec varied{sigma, sigma, sigma};
    const SupplyNetworkConfig draw_a =
        drawSupplyConfig(base, varied, deriveDrawSeed(mc_seed, 1));
    const SupplyNetworkConfig draw_b =
        drawSupplyConfig(base, varied, deriveDrawSeed(mc_seed, 1));
    const SupplyNetworkConfig draw_c =
        drawSupplyConfig(base, varied, deriveDrawSeed(mc_seed, 2));
    report.drawDeterministic = configBitsEqual(draw_a, draw_b) &&
                               !configBitsEqual(draw_a, draw_c);

    // And a nonzero sigma must actually move the network.
    report.nonzeroSigmaPerturbs = !configBitsEqual(draw_a, base);

    report.pass = report.zeroSigmaConfigBitIdentical &&
                  report.zeroSigmaVoltageBitIdentical &&
                  report.drawDeterministic &&
                  report.nonzeroSigmaPerturbs;
    return report;
}

} // namespace verify
} // namespace didt
