/**
 * @file
 * Named, deterministic fault-injection sites (failpoints).
 *
 * A failpoint is a named branch compiled into a failure path we ship —
 * a disk read in the trace repository, a parser entry point, a worker
 * task — that tests can arm at run time to force that path to fail.
 * Sites are evaluated through the DIDT_FAILPOINT / DIDT_FAILPOINT_KEYED
 * macros; a site that is not armed costs a single relaxed atomic load,
 * and with -DDIDT_FAILPOINTS=OFF the macros expand to a compile-time
 * `false` so the branch (and the site string) vanish entirely.
 *
 * Trigger policies are deterministic by construction:
 *  - nth-hit / every-k count evaluations of the site under a lock, so
 *    single-threaded tests can target "the 3rd disk read" exactly;
 *  - keyed probability hashes (seed, site, key), so whether a given
 *    key fails never depends on thread interleaving — a campaign with
 *    an armed probability failpoint fails the same cells at --jobs 1
 *    and --jobs 8 and its result JSON stays byte-identical;
 *  - key-equals fires for exactly one key (e.g. one campaign cell).
 *
 * Sites are armed programmatically (tests), from a spec string
 * (didt_campaign --failpoints), or from the DIDT_FAILPOINTS
 * environment variable. The registry never throws and never fires
 * anything itself: the call site decides what "fail" means (return
 * nullopt, throw, skip a write), keeping the injected behaviour
 * identical to the organic failure it models.
 */

#ifndef DIDT_VERIFY_FAILPOINT_HH
#define DIDT_VERIFY_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace didt
{
namespace verify
{

/** How an armed failpoint decides whether one evaluation fires. */
struct TriggerPolicy
{
    enum class Kind
    {
        Always,      ///< every evaluation fires
        NthHit,      ///< exactly the n-th evaluation fires (once)
        EveryK,      ///< every k-th evaluation fires (k, 2k, ...)
        Probability, ///< keyed hash of (seed, site, key) under p
        KeyEquals,   ///< fires iff the evaluation key matches exactly
    };

    Kind kind = Kind::Always;
    std::uint64_t n = 1;        ///< NthHit target / EveryK period
    double p = 0.0;             ///< Probability threshold in [0, 1]
    std::uint64_t seed = 0;     ///< Probability hash seed
    std::string key;            ///< KeyEquals match value

    static TriggerPolicy always();
    static TriggerPolicy nthHit(std::uint64_t n);
    static TriggerPolicy everyK(std::uint64_t k);
    static TriggerPolicy probability(double p, std::uint64_t seed = 0);
    static TriggerPolicy keyEquals(std::string key);
};

/** Evaluation counters of one site since it was armed (or reset). */
struct FailPointStats
{
    std::uint64_t hits = 0;  ///< evaluations while armed
    std::uint64_t fires = 0; ///< evaluations that fired
};

/** Arm @p site with @p policy (replacing any existing arming). */
void armFailPoint(const std::string &site, TriggerPolicy policy);

/** Disarm @p site; unarmed sites never fire. */
void disarmFailPoint(const std::string &site);

/** Disarm every site and zero all counters. */
void resetFailPoints();

/** Counters for @p site (zeros when never armed). */
FailPointStats failPointStats(const std::string &site);

/** Names of the currently armed sites, sorted. */
std::vector<std::string> armedFailPoints();

/**
 * Arm sites from a spec string: semicolon-separated `site=policy`
 * entries where policy is one of
 *
 *   always | nth:<n> | every:<k> | prob:<p>[:<seed>] | key:<value> | off
 *
 * e.g. "repo.disk_read=always;campaign.cell=prob:0.2:42". Returns
 * false (and describes the problem in @p error when non-null) on a
 * malformed spec, leaving previously armed sites untouched.
 */
bool armFailPointsFromSpec(const std::string &spec,
                           std::string *error = nullptr);

/**
 * Arm sites from the DIDT_FAILPOINTS environment variable when it is
 * set and non-empty ("OFF"/"off"/"0" are ignored so the variable can
 * double as a build-flag mirror). Fatal on a malformed spec: a typo in
 * a fault-injection run must not silently become a clean run.
 */
void armFailPointsFromEnv();

/**
 * Observer invoked (site, key) each time an armed failpoint fires —
 * the serve daemon uses it to log "failpoint_fired" events. One
 * observer process-wide; pass nullptr to remove. The observer runs on
 * the evaluating thread outside the registry lock and must not
 * evaluate failpoints itself.
 */
using FailPointObserver = void (*)(void *state, std::string_view site,
                                   std::string_view key);
void setFailPointObserver(FailPointObserver observer, void *state);

namespace detail
{

/** True iff any site is armed; the macro's fast-path gate. */
extern std::atomic<bool> g_armed;

/** Slow path: look up @p site and apply its policy. */
bool evaluate(std::string_view site, std::string_view key);

} // namespace detail

/** True when at least one failpoint is armed (single relaxed load). */
inline bool
failPointsArmed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

} // namespace verify
} // namespace didt

/**
 * The hook macros. `DIDT_FAILPOINT("repo.disk_read")` is true when the
 * named site should inject its fault; the keyed form makes the
 * decision a deterministic function of @p key for the Probability and
 * KeyEquals policies. Compiled out entirely under -DDIDT_FAILPOINTS=OFF.
 */
#ifdef DIDT_FAILPOINTS_OFF
#define DIDT_FAILPOINT(site) false
#define DIDT_FAILPOINT_KEYED(site, key) false
#else
#define DIDT_FAILPOINT(site)                                             \
    (::didt::verify::failPointsArmed() &&                                \
     ::didt::verify::detail::evaluate((site), std::string_view{}))
#define DIDT_FAILPOINT_KEYED(site, key)                                  \
    (::didt::verify::failPointsArmed() &&                                \
     ::didt::verify::detail::evaluate((site), (key)))
#endif

#endif // DIDT_VERIFY_FAILPOINT_HH
